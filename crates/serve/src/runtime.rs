//! The online serving runtime: shard workers, serving clients, and the
//! churn manager.
//!
//! Thread layout:
//!
//! * **Shard workers** (`config.workers` threads) own the
//!   [`StoreServer`] shards behind channels — the same wire-format
//!   [`worker`](piggyback_store::worker) protocol the batch prototype
//!   uses, now long-running. Under [`RpcMode::Direct`] no workers are
//!   spawned at all: clients (and the churn manager's migrations) execute
//!   the same coalesced batches inline against the shard mutexes —
//!   identical protocol and message accounting, no scheduler round trip.
//! * **Clients** ([`ServeClient`]) execute `Share`/`Query` against the
//!   current [`ServingSchedule`] snapshot (one [`EpochHandle::load`] per
//!   operation) and forward `Follow`/`Unfollow` to the churn manager.
//! * **The churn manager** (one thread) owns the
//!   [`IncrementalScheduler`]: it applies graph mutations (§3.3 —
//!   new edges served directly with the hybrid rule, orphaned piggybacked
//!   edges re-served), publishes a new epoch per mutation, and fires a
//!   **background full re-optimization** when the accumulated cost
//!   degradation crosses the configured threshold. While the optimizer
//!   runs on its own thread, churn keeps flowing; the mutations are
//!   replayed onto the fresh schedule before it is swapped in atomically.
//!   It also owns the cluster [`Topology`]: churn that lands cross-server
//!   traffic accumulates toward [`ServeConfig::rebalance_threshold`], and
//!   crossing it triggers a **live rebalance** — the configured
//!   [`Partitioner`](piggyback_store::topology::Partitioner) recomputes
//!   the partition map, moved views are migrated shard-to-shard over the
//!   wire protocol, and the new topology is published through the same
//!   epoch swap the schedule uses, so no request ever mixes two maps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use piggyback_core::incremental::{ChurnEffect, IncrementalScheduler};
use piggyback_core::schedule::Schedule;
use piggyback_core::scheduler::{Instance, Scheduler};
use piggyback_graph::{CsrGraph, NodeId};
use piggyback_obs::{set_ambient_events, EventKind, Snapshot};
use piggyback_store::fault::FaultInjector;
use piggyback_store::health::{HealthTracker, ShardHealth};
use piggyback_store::merge::sort_merge;
use piggyback_store::server::{QueryScratch, ShardStats, StoreServer};
use piggyback_store::topology::{PartitionRequest, PartitionStrategy, Topology};
use piggyback_store::worker::{
    dispatch, worker_loop, BufferPool, ShardClient, ShardRequest, Transport,
};
use piggyback_store::EventTuple;
use piggyback_workload::{Op, Rates};

use crate::cache::PullCache;
use crate::config::{ReoptMode, RpcMode, ServeConfig};
use crate::epoch::{CompiledSets, EpochHandle, ServingSchedule};
use crate::metrics::{OpRecorder, ServeMetrics};
use crate::ops::{ChurnMsg, ChurnReport, ReoptResult, ServeReport};

/// The long-running serving system.
///
/// Construct with [`ServeRuntime::start`], obtain any number of
/// [`ServeClient`]s, and finish with [`ServeRuntime::shutdown`] (after the
/// clients are dropped) to collect the end-of-run report.
pub struct ServeRuntime {
    handle: Arc<EpochHandle>,
    senders: Arc<Vec<Sender<ShardRequest>>>,
    transport: Transport,
    pool: Arc<BufferPool>,
    churn_tx: Sender<ChurnMsg>,
    cache: Arc<PullCache>,
    clock: Arc<AtomicU64>,
    top_k: usize,
    rpc: RpcMode,
    shards_n: usize,
    replication: usize,
    metrics: Option<Arc<ServeMetrics>>,
    /// Shared failure detector (present when replication or heartbeats
    /// are configured).
    health: Option<Arc<HealthTracker>>,
    /// Chaos fault injector (present when a fault plan is configured).
    faults: Option<Arc<FaultInjector>>,
    client_counter: AtomicU64,
    worker_handles: Vec<JoinHandle<()>>,
    churn_handle: Option<JoinHandle<()>>,
}

impl ServeRuntime {
    /// Boots the runtime for an optimized `(graph, rates, schedule)`
    /// triple. `reopt` is the optimizer the churn manager re-runs in the
    /// background when schedule quality degrades past
    /// [`ServeConfig::reopt_threshold`].
    ///
    /// # Panics
    ///
    /// Panics if the schedule does not match the graph or the rates do not
    /// cover every node.
    pub fn start(
        graph: CsrGraph,
        rates: Rates,
        schedule: Schedule,
        reopt: Box<dyn Scheduler>,
        config: ServeConfig,
    ) -> Self {
        assert!(config.shards >= 1 && config.workers >= 1, "need threads");
        assert_eq!(graph.edge_count(), schedule.edge_count());
        assert!(
            rates.len() >= graph.node_count(),
            "rates cover {} users, graph has {}",
            rates.len(),
            graph.node_count()
        );
        // Failure domains (racks/zones): a non-trivial map makes every
        // partitioner spread replica slots so no two copies of a view
        // share a domain — the placement that survives correlated kills.
        let domains =
            (config.domains > 0).then(|| Topology::block_domains(config.shards, config.domains));
        let topology = Arc::new(
            config
                .partition
                .partitioner()
                .partition(&PartitionRequest {
                    graph: &graph,
                    rates: &rates,
                    schedule: Some(&schedule),
                    servers: config.shards,
                    seed: config.placement_seed,
                    domains: domains.as_deref(),
                })
                .with_replication(config.replication.max(1)),
        );
        let replication = topology.replication();
        let handle = Arc::new(EpochHandle::new(ServingSchedule::compile(
            &graph,
            &schedule,
            Arc::clone(&topology),
            0,
        )));
        let shards: Arc<Vec<Mutex<StoreServer>>> = Arc::new(
            (0..config.shards)
                .map(|_| Mutex::new(StoreServer::new(config.view_capacity)))
                .collect(),
        );
        let pool = Arc::new(BufferPool::new());
        let mut senders = Vec::new();
        let mut worker_handles = Vec::new();
        if config.rpc != RpcMode::Direct {
            for _ in 0..config.workers {
                let (tx, rx) = bounded::<ShardRequest>(config.queue_depth);
                let shards = Arc::clone(&shards);
                let pool = Arc::clone(&pool);
                worker_handles.push(std::thread::spawn(move || worker_loop(&shards, &pool, &rx)));
                senders.push(tx);
            }
        }
        let (churn_tx, churn_rx) = bounded::<ChurnMsg>(config.queue_depth);
        let senders = Arc::new(senders);
        let transport = if config.rpc == RpcMode::Direct {
            Transport::Direct(Arc::clone(&shards))
        } else {
            Transport::Workers(Arc::clone(&senders))
        };
        let metrics = config.metrics.then(|| Arc::new(ServeMetrics::new()));
        let faults = config
            .faults
            .map(|plan| Arc::new(FaultInjector::new(plan, config.shards)));
        // The detector exists whenever replicas or heartbeats are in play;
        // the pull-cache TTL doubles as the Theorem-1 staleness budget a
        // Suspect replica may legally lag (reads are allowed to be that
        // stale anyway).
        let health = (replication > 1 || !config.heartbeat_interval.is_zero()).then(|| {
            Arc::new(HealthTracker::new(
                config.shards,
                config.suspect_misses.max(1),
                config.down_misses.max(config.suspect_misses.max(1)),
                config.pull_cache_ttl,
            ))
        });
        // A push edge to a k-replicated consumer fans out to k replica
        // slots, so the churn manager prices every push/pull decision —
        // incremental hybrid choices and background re-optimizations
        // alike — with k-amplified producer rates (the §2.1 cost model
        // with replication folded in). k = 1 returns the rates untouched,
        // which is what keeps the replication-1 plane bit-identical.
        let sched_rates = rates.push_amplified(replication);
        let manager = ChurnManager {
            inc: IncrementalScheduler::new(graph, sched_rates.clone(), schedule),
            rates: sched_rates,
            handle: Arc::clone(&handle),
            scheduler: Arc::from(reopt),
            threshold: config.reopt_threshold,
            reopt_mode: config.reopt_mode,
            reopt_budget_frac: config.reopt_budget_frac.clamp(0.01, 1.0),
            reopt_dirty: false,
            reopt_next_at: Instant::now(),
            partition: config.partition,
            rebalance_threshold: config.rebalance_threshold,
            placement_seed: config.placement_seed,
            transport: transport.clone(),
            pool: Arc::clone(&pool),
            migrate_scratch: QueryScratch::new(),
            rx: churn_rx,
            self_tx: churn_tx.clone(),
            metrics: metrics.clone(),
            reopt_in_flight: false,
            reopt_unsupported: false,
            reopt_started: Instant::now(),
            replay_log: Vec::new(),
            follows: 0,
            unfollows: 0,
            rejected: 0,
            reopts: 0,
            rebalances: 0,
            users_migrated: 0,
            cross_churned: 0.0,
            live_violations: 0,
            first_violation: None,
            health: health.clone(),
            faults: faults.clone(),
            heartbeat: config.heartbeat_interval,
            probes: (0..config.shards).map(|_| None).collect(),
            failed_over: vec![false; config.shards],
            failovers: 0,
            users_failed_over: 0,
            failover_unavailable_ms: 0.0,
            desired: topology,
            catching_up: (0..config.shards).map(|_| None).collect(),
            catchup_batch: config.catchup_batch.max(1),
            views_lost: 0,
            rejoins: 0,
            readmits: 0,
            detection_ms: 0.0,
            failover_ms: 0.0,
            catchup_ms: 0.0,
            readmit_ms: 0.0,
        };
        let churn_handle = std::thread::spawn(move || manager.run());
        ServeRuntime {
            handle,
            senders,
            transport,
            pool,
            churn_tx,
            cache: Arc::new(PullCache::new(config.pull_cache_ttl, 64)),
            clock: Arc::new(AtomicU64::new(1)),
            top_k: config.top_k,
            rpc: config.rpc,
            shards_n: config.shards,
            replication,
            metrics,
            health,
            faults,
            client_counter: AtomicU64::new(0),
            worker_handles,
            churn_handle: Some(churn_handle),
        }
    }

    /// A new front-end client with its own event-id namespace.
    pub fn client(&self) -> ServeClient {
        let id = self.client_counter.fetch_add(1, Ordering::Relaxed);
        ServeClient {
            handle: Arc::clone(&self.handle),
            senders: Arc::clone(&self.senders),
            shard: ShardClient::new(self.transport.clone(), Arc::clone(&self.pool))
                .with_resilience(self.health.clone(), self.faults.clone()),
            churn_tx: self.churn_tx.clone(),
            cache: Arc::clone(&self.cache),
            clock: Arc::clone(&self.clock),
            top_k: self.top_k,
            rpc: self.rpc,
            obs: self.metrics.as_deref().map(ServeMetrics::recorder),
            next_event: id << 40,
            targets: Vec::new(),
            merged: Vec::new(),
        }
    }

    /// The runtime's metrics bundle, when enabled.
    pub fn metrics(&self) -> Option<&Arc<ServeMetrics>> {
        self.metrics.as_ref()
    }

    /// Scrapes every shard's operation counters **over the wire**: one
    /// [`ShardRequest::Stats`] per shard through the same transport data
    /// ops use, pipelined (all requests in flight before the first reply
    /// is awaited). Works identically under the worker pool and the
    /// caller-runs transport — both route through the single
    /// `handle_request`, which is what guarantees the differential test's
    /// counter identity.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let mut scratch = QueryScratch::new();
        // A chaos-killed shard refuses the scrape like any other request;
        // it reports as zeros rather than hanging the snapshot.
        let pending: Vec<Option<_>> = (0..self.shards_n)
            .map(|shard| {
                if self.faults.as_ref().is_some_and(|f| f.is_killed(shard)) {
                    return None;
                }
                Some(
                    self.transport
                        .request_async(&self.pool, &mut scratch, |done| ShardRequest::Stats {
                            shard,
                            done,
                        }),
                )
            })
            .collect();
        pending
            .into_iter()
            .map(|rx| match rx {
                Some(rx) => {
                    let mut reply = rx.recv().expect("worker dropped stats reply");
                    ShardStats::decode(&mut reply).expect("malformed stats reply")
                }
                None => ShardStats::default(),
            })
            .collect()
    }

    /// Number of data-store shards.
    pub fn shards(&self) -> usize {
        self.shards_n
    }

    /// The shared failure detector, when the runtime carries one.
    pub fn health(&self) -> Option<&Arc<HealthTracker>> {
        self.health.as_ref()
    }

    /// The fault injector, when a chaos plan is configured.
    pub fn faults(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// Chaos control: kills `shard` (it refuses every request from now
    /// on). Returns `false` when no fault plan is configured — a runtime
    /// without an injector has no kill switches. Detection and failover
    /// proceed through the normal heartbeat path.
    pub fn kill_shard(&self, shard: usize) -> bool {
        match &self.faults {
            Some(f) => f.kill(shard),
            None => false,
        }
    }

    /// Chaos control: restarts a killed `shard` as a fresh, **empty**
    /// process — its views died with the process (`ResetViews` over the
    /// wire), then the kill is lifted so it answers connections again.
    /// The failover controller notices the recovered heartbeat, re-admits
    /// the shard to the write path, and streams its views back through
    /// budgeted anti-entropy before reads resume ([`ShardHealth::CatchingUp`]).
    /// Returns `false` when no fault plan is configured or the shard was
    /// not killed.
    pub fn restart_shard(&self, shard: usize) -> bool {
        let Some(f) = &self.faults else {
            return false;
        };
        if !f.is_killed(shard) {
            return false;
        }
        // Reset *before* revive: the replacement process must be visibly
        // empty from its first answered request.
        let mut scratch = QueryScratch::new();
        let rx = self
            .transport
            .request_async(&self.pool, &mut scratch, |done| ShardRequest::ResetViews {
                shard,
                done,
            });
        rx.recv().expect("worker dropped reset reply");
        f.revive(shard)
    }

    /// One point-in-time capture of everything observable: the registry's
    /// instruments (when metrics are on), the per-shard wire scrape folded
    /// into `store.*` counters, pull-cache counters, and queue/pool
    /// occupancy gauges. Safe to call while serving; periodic dumps diff
    /// successive snapshots with [`Snapshot::delta_since`].
    pub fn stats_snapshot(&self) -> Snapshot {
        let mut snap = match &self.metrics {
            Some(m) => m.snapshot(),
            None => Snapshot::new(),
        };
        let mut total = ShardStats::default();
        for s in self.shard_stats() {
            total.merge(&s);
        }
        snap.set_counter("store.updates", total.updates);
        snap.set_counter("store.queries", total.queries);
        snap.set_counter("store.events_inserted", total.events_inserted);
        snap.set_counter("store.events_returned", total.events_returned);
        snap.set_counter("store.batches", total.batches);
        snap.set_counter("store.batch_ops", total.batch_ops);
        snap.set_counter("store.views_extracted", total.views_extracted);
        snap.set_counter("store.views_installed", total.views_installed);
        snap.set_gauge("store.avg_batch_ops", total.avg_batch_ops());
        let depth: usize = self.senders.iter().map(Sender::len).sum();
        snap.set_gauge("store.queue_depth", depth as f64);
        let (bufs, vecs) = self.pool.pooled_counts();
        snap.set_gauge("store.pool_bufs", bufs as f64);
        snap.set_gauge("store.pool_vecs", vecs as f64);
        let (hits, misses) = self.cache.stats();
        snap.set_counter("cache.hits", hits);
        snap.set_counter("cache.misses", misses);
        snap.set_counter("cache.expired", self.cache.expired());
        snap.set_gauge("cache.resident", self.cache.resident() as f64);
        snap.set_gauge(
            "cache.max_served_staleness_s",
            self.cache.max_served_staleness().as_secs_f64(),
        );
        snap
    }

    /// Sweeps TTL-expired pull-cache entries (memory reclamation for
    /// read-cold keys), recording a [`EventKind::CacheSweep`] event.
    /// Returns `(entries scanned, entries dropped)`.
    pub fn sweep_cache(&self) -> (usize, usize) {
        let (scanned, expired) = self.cache.sweep_expired();
        if let Some(m) = &self.metrics {
            if scanned > 0 {
                m.events()
                    .record(EventKind::CacheSweep { scanned, expired });
            }
        }
        (scanned, expired)
    }

    /// Epoch of the currently published schedule snapshot.
    pub fn epoch(&self) -> u64 {
        self.handle.epoch()
    }

    /// The currently published schedule snapshot (diagnostics/tests).
    pub fn snapshot(&self) -> Arc<ServingSchedule> {
        self.handle.load()
    }

    /// Stops the churn manager (waiting for any in-flight re-optimization
    /// to land), validates bounded staleness on the final dynamic graph,
    /// and tears the worker pool down.
    ///
    /// Clients should be dropped first; a client that outlives shutdown
    /// keeps its shard channels alive (its operations still complete) but
    /// churn operations are rejected.
    pub fn shutdown(mut self) -> ServeReport {
        let (tx, rx) = bounded(1);
        self.churn_tx
            .send(ChurnMsg::Shutdown { done: tx })
            .expect("churn manager gone before shutdown");
        let churn = rx.recv().expect("churn manager dropped its report");
        // Final capture while the workers can still answer the wire scrape.
        let metrics = self.metrics.is_some().then(|| self.stats_snapshot());
        if let Some(h) = self.churn_handle.take() {
            h.join().expect("churn manager panicked");
        }
        drop(self.churn_tx);
        // Workers exit once every request sender is gone. The runtime's own
        // transport holds one clone of the sender Arc (the churn manager's
        // died with its thread above) — release it, or the unwrap below
        // could never succeed and a panicked worker would go unjoined.
        self.transport = Transport::Workers(Arc::new(Vec::new()));
        // If a client still holds the sender Arc, leave the workers
        // serving; they die with it.
        if let Ok(senders) = Arc::try_unwrap(self.senders) {
            drop(senders);
            for h in self.worker_handles.drain(..) {
                h.join().expect("shard worker panicked");
            }
        }
        let (cache_hits, cache_misses) = self.cache.stats();
        ServeReport {
            failovers: churn.failovers,
            unavailable_ms: churn.failover_unavailable_ms,
            views_lost: churn.views_lost,
            rejoins: churn.rejoins,
            readmits: churn.readmits,
            detection_ms: churn.detection_ms,
            failover_ms: churn.failover_ms,
            catchup_ms: churn.catchup_ms,
            readmit_ms: churn.readmit_ms,
            churn,
            cache_hits,
            cache_misses,
            final_epoch: self.handle.epoch(),
            metrics,
            replication: self.replication,
            max_replica_lag_ms: self
                .health
                .as_ref()
                .map_or(0.0, |h| h.max_readable_lag().as_secs_f64() * 1e3),
        }
    }
}

/// A front-end handle issuing operations against the runtime.
///
/// Every operation loads the schedule snapshot exactly once and uses it
/// end-to-end, so a concurrent epoch swap can never split one request
/// across two schedules. In the default [`RpcMode::Batched`] plane the
/// client owns every per-operation buffer (targets, merge output, the
/// [`ShardClient`]'s grouping/reply scratch), so a warmed-up client
/// sends shares with one payload allocation and assembles streams with
/// one shared snapshot allocation.
pub struct ServeClient {
    handle: Arc<EpochHandle>,
    senders: Arc<Vec<Sender<ShardRequest>>>,
    shard: ShardClient,
    churn_tx: Sender<ChurnMsg>,
    cache: Arc<PullCache>,
    clock: Arc<AtomicU64>,
    top_k: usize,
    rpc: RpcMode,
    /// Per-client instrument handles (`None` when metrics are off; the
    /// metrics-off hot path then pays no `Instant::now` either).
    obs: Option<OpRecorder>,
    next_event: u64,
    /// Reused target-view buffer (push/pull set plus self).
    targets: Vec<NodeId>,
    /// Reused merge output buffer.
    merged: Vec<EventTuple>,
}

impl ServeClient {
    /// Shares a new event from `u`: one batched update per touched server
    /// (Algorithm 3 lines 1–7). Returns the number of store messages sent.
    /// Users outside the topology (no rates, no home shard) are rejected
    /// with zero messages, mirroring the churn path's rejection.
    pub fn share(&mut self, u: NodeId) -> u64 {
        if self.obs.is_none() {
            return self.share_inner(u);
        }
        let t0 = Instant::now();
        let messages = self.share_inner(u);
        if let Some(rec) = &self.obs {
            rec.share(t0.elapsed(), messages);
        }
        messages
    }

    fn share_inner(&mut self, u: NodeId) -> u64 {
        let snap = self.handle.load();
        if u as usize >= snap.topology().users() {
            return 0;
        }
        self.next_event += 1;
        let ts = self.clock.fetch_add(1, Ordering::Relaxed);
        let event = EventTuple::new(u, self.next_event, ts);
        match self.rpc {
            RpcMode::Batched | RpcMode::Direct => {
                snap.collect_push_targets(u, &mut self.targets);
                self.shard
                    .update(snap.topology(), &self.targets, event.to_wire())
            }
            RpcMode::Legacy => {
                let payload = event.to_bytes();
                let mut targets = snap.push_targets(u).to_vec();
                targets.push(u);
                dispatch(
                    snap.topology(),
                    &self.senders,
                    &targets,
                    |shard, views, done| ShardRequest::Update {
                        shard,
                        views,
                        payload: payload.clone(),
                        done,
                    },
                )
                .len() as u64
            }
        }
    }

    /// Assembles `u`'s event stream (Algorithm 3 lines 8–16), possibly
    /// from the staleness-bounded cache. Returns `(events, messages)`;
    /// a cache hit costs zero messages and shares the cached allocation.
    pub fn query(&mut self, u: NodeId) -> (Arc<[EventTuple]>, u64) {
        if self.obs.is_none() {
            return self.query_inner(u);
        }
        let t0 = Instant::now();
        let out = self.query_inner(u);
        if let Some(rec) = &self.obs {
            rec.query(t0.elapsed(), out.1);
        }
        out
    }

    fn query_inner(&mut self, u: NodeId) -> (Arc<[EventTuple]>, u64) {
        let snap = self.handle.load();
        if u as usize >= snap.topology().users() {
            return (Arc::from(&[][..]), 0);
        }
        if let Some(events) = self.cache.get(u, snap.epoch()) {
            return (events, 0);
        }
        let k = self.top_k;
        let messages = match self.rpc {
            RpcMode::Batched | RpcMode::Direct => {
                snap.collect_pull_sources(u, &mut self.targets);
                self.shard
                    .query(snap.topology(), &self.targets, k, &mut self.merged)
            }
            RpcMode::Legacy => {
                let mut targets = snap.pull_sources(u).to_vec();
                targets.push(u);
                let replies = dispatch(
                    snap.topology(),
                    &self.senders,
                    &targets,
                    |shard, views, done| ShardRequest::Query {
                        shard,
                        views,
                        k,
                        done,
                    },
                );
                let messages = replies.len() as u64;
                self.merged.clear();
                for mut reply in replies {
                    EventTuple::decode_all(&mut reply, &mut self.merged);
                }
                sort_merge(&mut self.merged, k);
                messages
            }
        };
        // One allocation shared between the caller and the pull cache.
        let events: Arc<[EventTuple]> = Arc::from(&self.merged[..]);
        self.cache.put(u, snap.epoch(), Arc::clone(&events));
        (events, messages)
    }

    /// `v` starts following `u`. Blocks until the churn manager has
    /// applied the edge and published the new epoch; `false` if the edge
    /// already existed (or the runtime is shutting down).
    pub fn follow(&self, u: NodeId, v: NodeId) -> bool {
        self.churn(true, u, v)
    }

    /// `v` stops following `u`. `false` if the edge did not exist.
    pub fn unfollow(&self, u: NodeId, v: NodeId) -> bool {
        self.churn(false, u, v)
    }

    fn churn(&self, add: bool, u: NodeId, v: NodeId) -> bool {
        if self.obs.is_none() {
            return self.churn_inner(add, u, v);
        }
        let t0 = Instant::now();
        let applied = self.churn_inner(add, u, v);
        if let Some(rec) = &self.obs {
            // Latency covers the full round trip (queue + apply + publish);
            // the follow/unfollow counters count *applied* mutations only,
            // matching the churn report.
            if applied {
                rec.churn(t0.elapsed(), add);
            }
        }
        applied
    }

    fn churn_inner(&self, add: bool, u: NodeId, v: NodeId) -> bool {
        let (done, ack) = bounded(1);
        let msg = if add {
            ChurnMsg::Follow { u, v, done }
        } else {
            ChurnMsg::Unfollow { u, v, done }
        };
        if self.churn_tx.send(msg).is_err() {
            return false;
        }
        ack.recv().unwrap_or(false)
    }

    /// Executes one trace operation, returning the store messages it sent.
    pub fn apply_op(&mut self, op: Op) -> u64 {
        match op {
            Op::Share(u) => self.share(u),
            Op::Query(u) => self.query(u).1,
            Op::Follow(u, v) => {
                self.follow(u, v);
                0
            }
            Op::Unfollow(u, v) => {
                self.unfollow(u, v);
                0
            }
        }
    }
}

/// The single-writer churn manager (one thread; owns the incremental
/// scheduler, publishes every epoch).
struct ChurnManager {
    inc: IncrementalScheduler,
    rates: Rates,
    handle: Arc<EpochHandle>,
    scheduler: Arc<dyn Scheduler>,
    threshold: f64,
    /// Threshold-triggered or continuous re-optimization.
    reopt_mode: ReoptMode,
    /// Continuous mode's amortized wall-time budget fraction.
    reopt_budget_frac: f64,
    /// Whether churn has mutated the graph since the last re-optimization
    /// was fired — continuous mode has nothing to gain from re-optimizing
    /// an instance identical to the one the optimizer just saw.
    reopt_dirty: bool,
    /// Continuous mode's budget gate: the earliest instant the next
    /// re-optimization may fire (pushed out after each run so the
    /// optimizer occupies at most `reopt_budget_frac` of wall time).
    reopt_next_at: Instant,
    /// Partitioner the live rebalance re-runs.
    partition: PartitionStrategy,
    /// Rebalance once churn's cross-server cost exceeds this fraction of
    /// the optimized base cost (infinite = disabled).
    rebalance_threshold: f64,
    placement_seed: u64,
    /// Shard transport, for shard-to-shard view migration.
    transport: Transport,
    /// Buffer pool shared with the serving plane (migration replies).
    pool: Arc<BufferPool>,
    /// Scratch for caller-runs migration requests.
    migrate_scratch: QueryScratch,
    rx: Receiver<ChurnMsg>,
    self_tx: Sender<ChurnMsg>,
    /// Shared instrument bundle (`None` when metrics are off).
    metrics: Option<Arc<ServeMetrics>>,
    reopt_in_flight: bool,
    /// Set once the optimizer declines the instance (`supports() == false`)
    /// so the freeze-and-check is not repeated on every later churn op.
    reopt_unsupported: bool,
    /// When the in-flight re-optimization was fired (for the
    /// [`EventKind::ReoptEnd`] wall time).
    reopt_started: Instant,
    /// Mutations applied while a re-optimization is in flight; replayed
    /// onto the fresh schedule before it is swapped in.
    replay_log: Vec<(bool, NodeId, NodeId)>,
    follows: u64,
    unfollows: u64,
    rejected: u64,
    reopts: u64,
    rebalances: u64,
    users_migrated: u64,
    /// Cross-server message rate added by churn since the last rebalance.
    cross_churned: f64,
    /// Live bounded-staleness violations (per-mutation serving-set check).
    live_violations: u64,
    /// First live violation, verbatim, for the final report.
    first_violation: Option<String>,
    /// Shared failure detector; the churn thread is its prober.
    health: Option<Arc<HealthTracker>>,
    /// Fault injector (killed shards must not be probed over the wire).
    faults: Option<Arc<FaultInjector>>,
    /// Heartbeat cadence (ZERO = detection off).
    heartbeat: Duration,
    /// Outstanding heartbeat probes: per shard, the reply receiver and
    /// when the current grace window opened (one probe in flight each).
    probes: Vec<Option<(Receiver<bytes::Bytes>, Instant)>>,
    /// Shards currently failed over. Not terminal: a failed-over shard
    /// keeps being probed, and a recovered heartbeat re-enters it through
    /// anti-entropy catch-up ([`ChurnManager::begin_rejoin`]).
    failed_over: Vec<bool>,
    failovers: u64,
    users_failed_over: u64,
    /// Wall milliseconds of unavailability the failovers closed.
    failover_unavailable_ms: f64,
    /// The failure-free topology the cluster converges back to as shards
    /// rejoin. Rebalances update it; failovers never do.
    desired: Arc<Topology>,
    /// Per-shard anti-entropy state: `Some` while the shard is streaming
    /// its backlog back after a rejoin.
    catching_up: Vec<Option<CatchUp>>,
    /// Views streamed per catching-up shard per tick (the anti-entropy
    /// rate limit).
    catchup_batch: usize,
    /// Views destroyed by correlated failures: no surviving replica slot
    /// existed at failover time.
    views_lost: u64,
    rejoins: u64,
    readmits: u64,
    /// Failure-lifecycle phase accumulators (see [`ChurnReport`]).
    detection_ms: f64,
    failover_ms: f64,
    catchup_ms: f64,
    readmit_ms: f64,
}

/// Anti-entropy state of one rejoined shard.
struct CatchUp {
    /// Views still owed, each with the replica slots to install to
    /// (drained from the tail, `catchup_batch` per tick).
    pending: Vec<(NodeId, Vec<u32>)>,
    /// Backlog size at rejoin (for the readmit event).
    behind: usize,
    /// When the rejoin was detected (phase-timing anchor).
    since: Instant,
}

/// Churn overrides above this count are compacted into a fresh compiled
/// base (one O(n + m) recompile) instead of growing — it bounds both the
/// per-publish override-map clone and the snapshot's memory overhead on
/// long runs where re-optimization never fires.
const OVERRIDE_COMPACT_LIMIT: usize = 1024;

impl ChurnManager {
    fn run(mut self) {
        if self.heartbeat.is_zero() || self.health.is_none() {
            while let Ok(msg) = self.rx.recv() {
                if self.handle_msg(msg) {
                    return;
                }
            }
            return;
        }
        // Failure-detection mode: the churn thread doubles as the prober,
        // waking every heartbeat interval even while churn is idle. Under
        // a busy churn stream the deadline check after each message keeps
        // the cadence honest.
        let tick = self.heartbeat;
        let mut next_tick = Instant::now() + tick;
        loop {
            let wait = next_tick.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(wait) {
                Ok(msg) => {
                    if self.handle_msg(msg) {
                        return;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
            if Instant::now() >= next_tick {
                self.health_tick();
                next_tick = Instant::now() + tick;
            }
        }
    }

    /// Dispatches one message; `true` means shutdown completed.
    fn handle_msg(&mut self, msg: ChurnMsg) -> bool {
        match msg {
            ChurnMsg::Follow { u, v, done } => {
                let _ = done.send(self.apply(true, u, v));
                false
            }
            ChurnMsg::Unfollow { u, v, done } => {
                let _ = done.send(self.apply(false, u, v));
                false
            }
            ChurnMsg::ReoptDone(result) => {
                self.install_reopt(*result);
                false
            }
            ChurnMsg::Shutdown { done } => {
                // Let an in-flight re-optimization land so its thread
                // is not abandoned mid-swap; further churn is rejected.
                while self.reopt_in_flight {
                    match self.rx.recv() {
                        Ok(ChurnMsg::ReoptDone(result)) => {
                            self.install_reopt(*result);
                        }
                        Ok(ChurnMsg::Follow { done, .. }) | Ok(ChurnMsg::Unfollow { done, .. }) => {
                            let _ = done.send(false);
                        }
                        Ok(ChurnMsg::Shutdown { .. }) | Err(_) => break,
                    }
                }
                let _ = done.send(self.final_report());
                true
            }
        }
    }

    /// One heartbeat round. Probing is **asynchronous**: each live shard
    /// has at most one probe in flight, polled with a zero-wait receive
    /// on later ticks, so a slow data plane never stretches the tick
    /// cadence. A live shard accrues a miss only when a full grace
    /// window passes with its probe unanswered, and the window re-arms
    /// after each miss — `down_misses` misses therefore mean the shard
    /// answered *nothing* for `down_misses` consecutive windows. Killed
    /// shards are never probed over the wire (the injector refuses the
    /// connection) and accrue a miss every tick, so a real death is
    /// confirmed in `down_misses` ticks regardless of the grace window.
    /// Runs on the churn thread — the single writer — so failover's
    /// migrate-then-swap inherits the same race-freedom as rebalancing.
    fn health_tick(&mut self) {
        let Some(health) = self.health.clone() else {
            return;
        };
        // Heartbeats share the data-plane queues, so under closed-loop
        // saturation a probe legitimately waits behind a deep batch
        // backlog: give replies a generous window. This costs nothing on
        // true-death detection (killed shards bypass the wire entirely),
        // it only insulates live-but-busy shards from false positives.
        let grace = (self.heartbeat * 2).max(Duration::from_millis(100));
        let shards = health.shards();
        for s in 0..shards {
            // A partitioned shard is unreachable on the probe path too:
            // inbound drops the request, outbound drops the reply —
            // either way heartbeat silence, which is exactly how a
            // sustained partial partition is detected.
            let partitioned = self
                .faults
                .as_ref()
                .is_some_and(|f| f.partition_of(s).is_some());
            if self.failed_over[s] {
                // A failed-over shard is probed for *rejoin*, not for
                // more misses: the first answered heartbeat re-enters it
                // through anti-entropy catch-up.
                if self.faults.as_ref().is_some_and(|f| f.is_killed(s)) || partitioned {
                    self.probes[s] = None;
                    continue;
                }
                if let Some((rx, since)) = self.probes[s].take() {
                    match rx.recv_deadline(Instant::now()) {
                        Ok(_) => {
                            self.begin_rejoin(s);
                            continue;
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            self.probes[s] = Some((rx, since));
                            continue;
                        }
                        Err(RecvTimeoutError::Disconnected) => continue,
                    }
                }
                let rx =
                    self.transport
                        .request_async(&self.pool, &mut self.migrate_scratch, |done| {
                            ShardRequest::Heartbeat { shard: s, done }
                        });
                self.probes[s] = Some((rx, Instant::now()));
                continue;
            }
            if self.faults.as_ref().is_some_and(|f| f.is_killed(s)) || partitioned {
                // Connection refused (or partitioned): no wire probe,
                // direct miss.
                self.probes[s] = None;
                self.note_miss(&health, s);
                continue;
            }
            if let Some((rx, since)) = self.probes[s].take() {
                // Zero-deadline receive: pops an arrived reply, never waits.
                match rx.recv_deadline(Instant::now()) {
                    Ok(_) => health.record_ok(s),
                    Err(RecvTimeoutError::Timeout) => {
                        if since.elapsed() >= grace {
                            self.note_miss(&health, s);
                            // Re-arm the window but keep the same probe:
                            // any late reply still proves liveness.
                            self.probes[s] = Some((rx, Instant::now()));
                        } else {
                            self.probes[s] = Some((rx, since));
                        }
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        // Worker gone (teardown in progress).
                        self.note_miss(&health, s);
                        continue;
                    }
                }
            }
            let rx = self
                .transport
                .request_async(&self.pool, &mut self.migrate_scratch, |done| {
                    ShardRequest::Heartbeat { shard: s, done }
                });
            self.probes[s] = Some((rx, Instant::now()));
        }
        if let Some(m) = &self.metrics {
            m.health_suspect.set(health.not_up() as f64);
            m.replica_lag
                .set(health.max_live_silence().as_secs_f64() * 1e3);
        }
        let mut failed_any = false;
        for s in 0..shards {
            if !self.failed_over[s] && health.state(s) == ShardHealth::Down {
                self.fail_over(s);
                failed_any = true;
            }
        }
        if failed_any {
            // Failover amnesty: the catch-up copy just flooded the data
            // plane, and heartbeat probes queue behind it, so every live
            // shard now looks silent. Restart detection from a clean
            // slate — recovery traffic must never be mistaken for more
            // failures, or one real death cascades into failing over the
            // whole fleet. Truly dead shards lose nothing: kills are
            // detected without wire traffic, in `down_misses` ticks.
            // Catching-up shards are excluded: amnesty must never promote
            // a rejoined shard to `Up` before its backlog has drained —
            // only the explicit readmit may do that (the tracker refuses
            // the promotion too; skipping here keeps its rejoin probe
            // state intact as well).
            for s in 0..shards {
                if !self.failed_over[s]
                    && self.catching_up[s].is_none()
                    && !self.faults.as_ref().is_some_and(|f| f.is_killed(s))
                {
                    health.record_ok(s);
                    self.probes[s] = None;
                }
            }
        }
        self.catchup_tick(&health);
    }

    /// Records a heartbeat miss, logging the state transition if any.
    fn note_miss(&mut self, health: &HealthTracker, s: usize) {
        let miss = health.record_miss(s);
        if miss.transitioned {
            if let Some(m) = &self.metrics {
                m.events().record(EventKind::HeartbeatMiss {
                    shard: s,
                    misses: miss.misses,
                });
            }
        }
    }

    /// Re-points every user whose primary is `dead` at its first
    /// surviving replica slot, catches newly exposed replica slots up,
    /// and publishes the new topology epoch. No-op (beyond marking the
    /// shard terminal) with replication 1 — there is nowhere to go.
    fn fail_over(&mut self, dead: usize) {
        self.failed_over[dead] = true;
        // A shard that dies again mid-catch-up abandons the rejoin; the
        // next recovered heartbeat starts a fresh one.
        self.catching_up[dead] = None;
        let started = Instant::now();
        let snap = self.handle.load();
        let old = Arc::clone(snap.topology());
        let health = match &self.health {
            Some(h) => Arc::clone(h),
            None => return,
        };
        // Detection phase: first evidence of death (first missed
        // heartbeat, or the kill instant) to the `Down` verdict landing
        // here.
        let detected = health
            .first_miss_elapsed(dead)
            .or_else(|| self.faults.as_ref().and_then(|f| f.killed_since(dead)))
            .unwrap_or_default();
        self.detection_ms += detected.as_secs_f64() * 1e3;
        if old.replication() < 2 {
            return;
        }
        let faults = self.faults.clone();
        let dead_set: Vec<bool> = (0..old.servers())
            .map(|s| {
                self.failed_over[s]
                    || health.state(s) == ShardHealth::Down
                    || faults.as_ref().is_some_and(|f| f.is_killed(s))
            })
            .collect();
        let mut assign = old.assignment().to_vec();
        let mut moved: Vec<NodeId> = Vec::new();
        for u in 0..assign.len() as NodeId {
            if assign[u as usize] as usize != dead {
                continue;
            }
            let Some(next) = old.replica_slots(u).find(|&r| !dead_set[r]) else {
                // Every replica is gone too — data loss. This is exactly
                // what domain-blind placement risks under a correlated
                // (whole-domain) kill and what domain-spread placement
                // makes impossible for a single-domain failure. Leave the
                // assignment in place; the count is the measurement.
                self.views_lost += 1;
                continue;
            };
            assign[u as usize] = next as u32;
            moved.push(u);
        }
        let mut new_t =
            Topology::from_assignment(assign, old.servers()).with_replication(old.replication());
        if !old.domains().is_empty() {
            // The repaired topology keeps the failure-domain map: replica
            // slots of re-homed users stay domain-spread.
            new_t = new_t.with_domains(old.domains().to_vec());
        }
        // Anti-entropy *before* publish: re-pointing a primary exposes
        // replica slots that never received writes (they were behind the
        // dead shard in the slot ring). Copy the surviving view in via a
        // non-destructive read + merge-install — deliberately NOT
        // ExtractView, which would remove the donor view and open a
        // window where concurrent queries see nothing.
        let catch_started = Instant::now();
        let mut catch_up = 0usize;
        {
            let (transport, pool, scratch) =
                (&self.transport, &self.pool, &mut self.migrate_scratch);
            let reads: Vec<_> = moved
                .iter()
                .map(|&u| {
                    transport.request_async(pool, scratch, |done| ShardRequest::Query {
                        shard: new_t.server_of(u),
                        views: vec![u],
                        k: usize::MAX,
                        done,
                    })
                })
                .collect();
            let mut installs = Vec::new();
            for (&u, rx) in moved.iter().zip(reads) {
                let payload = rx.recv().expect("worker dropped catch-up reply");
                if payload.is_empty() {
                    continue;
                }
                for slot in new_t.replica_slots(u) {
                    let had_it = old.replica_slots(u).any(|r| r == slot);
                    if had_it || dead_set[slot] {
                        continue;
                    }
                    catch_up += 1;
                    installs.push(transport.request_async(pool, scratch, |done| {
                        ShardRequest::InstallView {
                            shard: slot,
                            view: u,
                            payload: payload.clone(),
                            done,
                        }
                    }));
                }
            }
            for rx in installs {
                rx.recv().expect("worker dropped install reply");
            }
        }
        self.handle.swap(snap.with_topology(Arc::new(new_t)));
        self.failovers += 1;
        self.users_failed_over += moved.len() as u64;
        // Failover phase: `Down` verdict to the repaired epoch publishing.
        self.failover_ms += started.elapsed().as_secs_f64() * 1e3;
        // The unavailability window runs from the first evidence of death
        // (first missed heartbeat, or the kill instant if earlier
        // evidence exists) to the epoch publish that routed around it.
        let window = health
            .first_miss_elapsed(dead)
            .or_else(|| faults.as_ref().and_then(|f| f.killed_since(dead)))
            .unwrap_or_else(|| started.elapsed());
        self.failover_unavailable_ms += window.as_secs_f64() * 1e3;
        if let Some(m) = &self.metrics {
            m.failover_count.inc();
            m.events().record(EventKind::Failover {
                shard: dead,
                moved: moved.len(),
                wall_ms: started.elapsed().as_secs_f64() * 1e3,
            });
            m.events().record(EventKind::CatchUp {
                views: catch_up,
                wall_ms: catch_started.elapsed().as_secs_f64() * 1e3,
            });
        }
    }

    /// A failed-over shard answered a heartbeat again: the restarted
    /// (empty) process is back. Re-admit it to the **write** path
    /// immediately — the repaired topology restores its desired replica
    /// slots, so new events flow to it live from this epoch on — but keep
    /// it out of the **read** path ([`ShardHealth::CatchingUp`] is not
    /// readable) until anti-entropy has streamed its backlog to parity.
    fn begin_rejoin(&mut self, s: usize) {
        let Some(health) = self.health.clone() else {
            return;
        };
        let since = Instant::now();
        self.failed_over[s] = false;
        health.mark_catching_up(s);
        self.rejoins += 1;
        // Rebuild from the failure-free assignment: shards still dead
        // keep their failed-over repair, the rejoined shard gets its
        // desired views back. Catching-up shards count as alive here —
        // writes must flow to them.
        let snap = self.handle.load();
        let old = Arc::clone(snap.topology());
        let desired = Arc::clone(&self.desired);
        let dead: Vec<bool> = (0..desired.servers())
            .map(|d| self.failed_over[d] || self.faults.as_ref().is_some_and(|f| f.is_killed(d)))
            .collect();
        let mut assign = desired.assignment().to_vec();
        for u in 0..assign.len() as NodeId {
            let home = assign[u as usize] as usize;
            if !dead[home] {
                continue;
            }
            if let Some(next) = desired.replica_slots(u).find(|&r| !dead[r]) {
                assign[u as usize] = next as u32;
            }
        }
        let mut new_t = Topology::from_assignment(assign, desired.servers())
            .with_replication(desired.replication());
        if !desired.domains().is_empty() {
            new_t = new_t.with_domains(desired.domains().to_vec());
        }
        // The anti-entropy backlog: every view with a replica slot on the
        // rejoined shard (its copy died with the process — or silently
        // missed writes, if the outage was a partition), plus any slot
        // the repaired ring newly exposes. Each entry remembers its
        // install targets; the donor is resolved per batch from whichever
        // old-ring slot is still alive.
        let mut pending: Vec<(NodeId, Vec<u32>)> = Vec::new();
        for u in 0..new_t.users() as NodeId {
            let targets: Vec<u32> = new_t
                .replica_slots(u)
                .filter(|&r| r == s || !old.replica_slots(u).any(|o| o == r))
                .map(|r| r as u32)
                .collect();
            if !targets.is_empty() {
                pending.push((u, targets));
            }
        }
        let behind = pending.len();
        self.handle.swap(snap.with_topology(Arc::new(new_t)));
        self.catching_up[s] = Some(CatchUp {
            pending,
            behind,
            since,
        });
        if let Some(m) = &self.metrics {
            m.events().record(EventKind::Rejoin {
                shard: s,
                views_behind: behind,
            });
        }
    }

    /// Streams one budgeted anti-entropy batch to every catching-up
    /// shard (at most [`ServeConfig::catchup_batch`] views each per
    /// heartbeat tick, so catch-up floods cannot starve the foreground
    /// data plane), and readmits a shard to the read path once its
    /// backlog drains **and** its heartbeat silence fits the Theorem-1
    /// staleness budget.
    fn catchup_tick(&mut self, health: &Arc<HealthTracker>) {
        for s in 0..self.catching_up.len() {
            let Some(mut cu) = self.catching_up[s].take() else {
                continue;
            };
            // Died again mid-catch-up (kill, partition, or detector
            // verdict): abandon the rejoin; normal detection owns the
            // shard from here.
            if self
                .faults
                .as_ref()
                .is_some_and(|f| f.is_killed(s) || f.partition_of(s).is_some())
                || health.state(s) == ShardHealth::Down
            {
                continue;
            }
            let n = cu.pending.len().min(self.catchup_batch);
            let batch: Vec<(NodeId, Vec<u32>)> = cu.pending.split_off(cu.pending.len() - n);
            let remaining = cu.pending.len();
            if n > 0 {
                let faults = self.faults.clone();
                let alive = |r: usize| {
                    !faults.as_ref().is_some_and(|f| f.is_killed(r))
                        && health.state(r) != ShardHealth::Down
                };
                let snap = self.handle.load();
                let t = snap.topology();
                let (transport, pool, scratch) =
                    (&self.transport, &self.pool, &mut self.migrate_scratch);
                // Pipelined like every other migration: all donor reads in
                // flight before the first install streams out. Reads are
                // non-destructive (Query, not ExtractView): the donor keeps
                // serving throughout.
                let reads: Vec<_> = batch
                    .iter()
                    .map(|(u, targets)| {
                        t.replica_slots(*u)
                            .find(|&r| !targets.contains(&(r as u32)) && alive(r))
                            .map(|donor| {
                                transport.request_async(pool, scratch, |done| ShardRequest::Query {
                                    shard: donor,
                                    views: vec![*u],
                                    k: usize::MAX,
                                    done,
                                })
                            })
                    })
                    .collect();
                let mut installs = Vec::new();
                for ((u, targets), rx) in batch.iter().zip(reads) {
                    let Some(rx) = rx else { continue };
                    let payload = rx.recv().expect("worker dropped catch-up reply");
                    if payload.is_empty() {
                        continue;
                    }
                    for &r in targets {
                        installs.push(transport.request_async(pool, scratch, |done| {
                            ShardRequest::InstallView {
                                shard: r as usize,
                                view: *u,
                                payload: payload.clone(),
                                done,
                            }
                        }));
                    }
                }
                for rx in installs {
                    rx.recv().expect("worker dropped install reply");
                }
                if let Some(m) = &self.metrics {
                    m.events().record(EventKind::CatchUpBatch {
                        shard: s,
                        views: n,
                        remaining,
                    });
                }
            }
            if !cu.pending.is_empty() {
                self.catching_up[s] = Some(cu);
                continue;
            }
            // Backlog drained and writes have been live since the rejoin
            // epoch: the shard's worst view lag is now its heartbeat
            // silence. Readmit only once that fits the staleness budget
            // (zero budget = cache disabled = no extra gate).
            let budget = health.laxity();
            if !budget.is_zero() && health.silence(s) > budget {
                self.catching_up[s] = Some(cu);
                continue;
            }
            self.catchup_ms += cu.since.elapsed().as_secs_f64() * 1e3;
            if health.readmit(s) {
                self.readmits += 1;
                self.readmit_ms += cu.since.elapsed().as_secs_f64() * 1e3;
                if let Some(m) = &self.metrics {
                    m.events().record(EventKind::Readmit {
                        shard: s,
                        views: cu.behind,
                        wall_ms: cu.since.elapsed().as_secs_f64() * 1e3,
                    });
                }
            }
        }
    }

    /// Applies one mutation, publishes the next epoch, and checks the
    /// re-optimization trigger. Returns whether the edge actually changed.
    fn apply(&mut self, add: bool, u: NodeId, v: NodeId) -> bool {
        let n = self.rates.len() as u64;
        if u as u64 >= n || v as u64 >= n {
            // Users outside the rate model cannot be priced; reject.
            self.rejected += 1;
            return false;
        }
        let effect = if add {
            self.inc.add_edge_detailed(u, v)
        } else {
            self.inc.remove_edge_detailed(u, v)
        };
        if !effect.applied {
            self.rejected += 1;
            return false;
        }
        if add {
            self.follows += 1;
        } else {
            self.unfollows += 1;
        }
        if self.reopt_in_flight {
            self.replay_log.push((add, u, v));
        }
        self.reopt_dirty = true;
        // Live bounded-staleness check: every edge this mutation reserved
        // for direct serving must be in the serving sets *now* — the same
        // invariant the post-run validation sweeps, caught at the moment it
        // would break. `serves_edge_directly` is an allocation-free probe.
        for &(x, y) in &effect.reserved_direct {
            if !self.inc.serves_edge_directly(x, y) {
                self.live_violations += 1;
                if let Some(m) = &self.metrics {
                    m.staleness_violations.inc();
                }
                if self.first_violation.is_none() {
                    self.first_violation = Some(format!(
                        "live: edge {x} -> {y} reserved direct but absent from serving sets \
                         after {} mutation ({u} -> {v})",
                        if add { "follow" } else { "unfollow" },
                    ));
                }
            }
        }
        // Every edge this mutation switched to direct serving — the added
        // follow itself, or the piggybacked edges an unfollow orphaned —
        // adds its hybrid cost to the wire when its endpoints live on
        // different servers. That is the degradation a rebalance can win
        // back; skip the accounting entirely when rebalancing can never
        // fire (disabled, or the stateless hash strategy).
        if self.rebalance_threshold.is_finite()
            && self.partition != PartitionStrategy::Hash
            && !effect.reserved_direct.is_empty()
        {
            let snap = self.handle.load();
            let t = snap.topology();
            for &(x, y) in &effect.reserved_direct {
                if t.server_of(x) != t.server_of(y) {
                    self.cross_churned += self.rates.rp(x).min(self.rates.rc(y));
                }
            }
        }
        if let Some(m) = &self.metrics {
            m.cost_delta.set(self.inc.overlay_cost_delta());
            m.cross_cost.set(self.cross_churned);
        }
        self.publish(&effect);
        self.maybe_rebalance();
        self.maybe_reopt();
        true
    }

    /// Fires a live rebalance when churn has pushed enough message rate
    /// across servers: re-partition with the configured strategy, migrate
    /// the moved views shard-to-shard, publish the new topology.
    fn maybe_rebalance(&mut self) {
        // Hash placement is a pure function of (users, servers, seed):
        // re-partitioning reproduces the current map, so a rebalance could
        // never move anything — don't bother (apply() skips the
        // accumulator for the same reason).
        if !self.rebalance_threshold.is_finite() || self.partition == PartitionStrategy::Hash {
            return;
        }
        let base = self.inc.base_cost();
        if base <= 0.0 || self.cross_churned <= self.rebalance_threshold * base {
            return;
        }
        self.rebalance();
    }

    /// Recomputes the topology and re-homes every moved view.
    ///
    /// The migration speaks the shard wire protocol (extract at the old
    /// home, merge-install at the new one), pipelined — every extract is
    /// in flight before the first reply is awaited, and installs stream
    /// out as payloads arrive — and completes *before* the new topology
    /// is published, so a query after the swap finds the view already at
    /// its new home. In-flight requests keep routing through the snapshot
    /// they loaded — the epoch swap guarantees no request mixes the two
    /// maps.
    ///
    /// Consistency is the store's memcached model (§4.3: views are
    /// caches; re-placement implies cache misses): an update that races
    /// the migration — routed via an old snapshot after its view was
    /// extracted or after the swap — can land at the old home and stay
    /// invisible to later queries, exactly as a resized batch cluster
    /// drops moved views. Bounded staleness of the *schedule* is
    /// unaffected (validated post-run); quiescent-traffic migration is
    /// lossless (`tests/rebalance.rs`).
    ///
    /// Deliberately synchronous on the churn thread (unlike the
    /// backgrounded re-optimization): the single writer is what makes
    /// migrate-then-swap race-free, at the price of stalling churn — not
    /// serving — for the repartition + migration (seconds at 100k users;
    /// `BENCH_placement.json` wall times). Size `rebalance_threshold` so
    /// this stays rare.
    fn rebalance(&mut self) {
        let started = Instant::now();
        let snap = self.handle.load();
        let old = Arc::clone(snap.topology());
        // Re-partition the *current* graph under the schedule actually
        // serving it (base assignments + direct overlay edges), so the new
        // map reflects the traffic churn created — not the boot snapshot.
        let (frozen, serving) = self.inc.freeze_with_schedule();
        let new = self
            .partition
            .partitioner()
            .partition(&PartitionRequest {
                graph: &frozen,
                rates: &self.rates,
                schedule: Some(&serving),
                servers: old.servers(),
                seed: self.placement_seed,
                domains: (!old.domains().is_empty()).then(|| old.domains()),
            })
            .with_replication(old.replication());
        let moved = old.moved_users(&new);
        if moved.is_empty() {
            // The partitioner reproduced the current map (always true for
            // deterministic hash with a fixed seed): nothing to migrate,
            // and publishing an identical topology would only flush every
            // client's pull cache. Reset the trigger and keep the epoch.
            self.cross_churned = 0.0;
            return;
        }
        let (transport, pool, scratch) = (&self.transport, &self.pool, &mut self.migrate_scratch);
        let extracts: Vec<_> = moved
            .iter()
            .map(|&u| {
                transport.request_async(pool, scratch, |done| ShardRequest::ExtractView {
                    shard: old.server_of(u),
                    view: u,
                    done,
                })
            })
            .collect();
        let mut installs = Vec::new();
        for (&u, rx) in moved.iter().zip(extracts) {
            let payload = rx.recv().expect("worker dropped extract reply");
            if !payload.is_empty() {
                installs.push(transport.request_async(pool, scratch, |done| {
                    ShardRequest::InstallView {
                        shard: new.server_of(u),
                        view: u,
                        payload,
                        done,
                    }
                }));
            }
        }
        for rx in installs {
            rx.recv().expect("worker dropped install reply");
        }
        self.users_migrated += moved.len() as u64;
        self.rebalances += 1;
        self.cross_churned = 0.0;
        let new = Arc::new(new);
        // The rebalanced map is the new failure-free baseline rejoins
        // converge back to.
        self.desired = Arc::clone(&new);
        self.handle.swap(snap.with_topology(new));
        if let Some(m) = &self.metrics {
            m.events().record(EventKind::Rebalance {
                moved: moved.len(),
                wall_ms: started.elapsed().as_secs_f64() * 1e3,
            });
        }
    }

    /// Publishes a new epoch overriding exactly the users the mutation
    /// touched. Single writer: load-modify-swap is race-free. Once the
    /// override map would exceed [`OVERRIDE_COMPACT_LIMIT`], the sets are
    /// compacted into a fresh base instead, keeping per-publish cost
    /// bounded on runs where re-optimization never fires.
    fn publish(&self, effect: &ChurnEffect) {
        let snap = self.handle.load();
        if snap.override_count() >= OVERRIDE_COMPACT_LIMIT {
            self.publish_full_base();
            return;
        }
        let push_updates: Vec<(NodeId, Vec<NodeId>)> = effect
            .push_changed
            .iter()
            .map(|&x| (x, self.inc.push_targets(x)))
            .collect();
        let pull_updates: Vec<(NodeId, Vec<NodeId>)> = effect
            .pull_changed
            .iter()
            .map(|&x| (x, self.inc.pull_sources(x)))
            .collect();
        self.handle
            .swap(snap.with_updates(push_updates, pull_updates));
        if let Some(m) = &self.metrics {
            let now = self.handle.load();
            m.events().record(EventKind::EpochSwap {
                epoch: now.epoch(),
                overrides: now.override_count(),
            });
        }
    }

    /// Publishes a freshly compiled base (no overrides) reflecting the
    /// incremental scheduler's current serving sets; O(n + m). The
    /// topology is carried over unchanged.
    fn publish_full_base(&self) {
        let n = self.rates.len();
        let mut sets = CompiledSets {
            push: Vec::with_capacity(n),
            pull: Vec::with_capacity(n),
        };
        for x in 0..n as NodeId {
            sets.push.push(self.inc.push_targets(x));
            sets.pull.push(self.inc.pull_sources(x));
        }
        let snap = self.handle.load();
        let epoch = snap.epoch() + 1;
        self.handle.swap(ServingSchedule::from_sets(
            sets,
            Arc::clone(snap.topology()),
            epoch,
        ));
        if let Some(m) = &self.metrics {
            m.events().record(EventKind::EpochSwap {
                epoch,
                overrides: 0,
            });
        }
    }

    /// Fires a background re-optimization when none is already running and
    /// the mode's trigger is met: threshold mode waits for degradation to
    /// cross the configured fraction of the base cost; continuous mode
    /// fires whenever the graph is dirty and the amortized budget allows.
    fn maybe_reopt(&mut self) {
        if self.reopt_in_flight || self.reopt_unsupported {
            return;
        }
        match self.reopt_mode {
            ReoptMode::Threshold => {
                if !self.threshold.is_finite() {
                    return;
                }
                let base = self.inc.base_cost();
                if base <= 0.0 || self.inc.overlay_cost_delta() <= self.threshold * base {
                    return;
                }
            }
            ReoptMode::Continuous => {
                if !self.reopt_dirty || Instant::now() < self.reopt_next_at {
                    return;
                }
            }
        }
        let frozen = self.inc.freeze_graph();
        let rates = self.rates.clone();
        if !self.scheduler.supports(&Instance::new(&frozen, &rates)) {
            // An optimizer that declines this instance will decline every
            // grown version of it too; never pay the freeze again.
            self.reopt_unsupported = true;
            return;
        }
        let scheduler = Arc::clone(&self.scheduler);
        let tx = self.self_tx.clone();
        self.reopt_in_flight = true;
        // The frozen snapshot captures everything applied so far; churn
        // arriving while the optimizer runs re-dirties the flag.
        self.reopt_dirty = false;
        self.reopt_started = Instant::now();
        let events = self.metrics.as_ref().map(|m| {
            m.events().record(EventKind::ReoptStart {
                cost_before: self.inc.cost(),
                trigger_delta: self.inc.overlay_cost_delta(),
            });
            m.events().clone()
        });
        std::thread::spawn(move || {
            // Install the event ring as this thread's ambient log so the
            // optimizer's fan-out pool records its batch dispatches into
            // the runtime's trace.
            let _guard = events.as_ref().map(set_ambient_events);
            let out = scheduler.schedule(&Instance::new(&frozen, &rates));
            // The manager may have shut down meanwhile; that drop is fine.
            let _ = tx.send(ChurnMsg::ReoptDone(Box::new(ReoptResult {
                graph: frozen,
                schedule: out.schedule,
                stats: out.stats,
            })));
        });
    }

    /// Swaps a finished re-optimization in: replay the churn that arrived
    /// while it ran, recompile the serving sets, publish a fresh base.
    fn install_reopt(&mut self, result: ReoptResult) {
        let ReoptResult {
            graph,
            schedule,
            stats,
        } = result;
        let mut fresh = IncrementalScheduler::new(graph, self.rates.clone(), schedule);
        for (add, u, v) in self.replay_log.drain(..) {
            if add {
                fresh.add_edge(u, v);
            } else {
                fresh.remove_edge(u, v);
            }
        }
        self.inc = fresh;
        self.reopt_in_flight = false;
        self.reopts += 1;
        let elapsed = self.reopt_started.elapsed();
        // Amortized budget: a run of W may occupy at most `frac` of wall
        // time, so the next fires no sooner than W * (1 - frac) / frac
        // from now (frac = 1 re-fires immediately).
        let cooloff = elapsed.mul_f64((1.0 - self.reopt_budget_frac) / self.reopt_budget_frac);
        self.reopt_next_at = Instant::now() + cooloff;
        if let Some(m) = &self.metrics {
            m.reopt_stream_passes.add(stats.iterations as u64);
            m.reopt_budget_spent_ms.add(elapsed.as_millis() as u64);
            m.reopt_hubs_admitted.add(stats.hubs_applied as u64);
            m.reopt_hubs_evicted.add(stats.hubs_evicted as u64);
            m.events().record(EventKind::ReoptEnd {
                cost_after: self.inc.cost(),
                wall_ms: elapsed.as_secs_f64() * 1e3,
                installed: true,
            });
        }
        // The fresh schedule re-piggybacks the direct-served churn edges,
        // so the cross-server degradation the accumulator priced is gone;
        // a rebalance justified by it would migrate for nothing.
        self.cross_churned = 0.0;
        self.publish_full_base();
    }

    fn final_report(&self) -> ChurnReport {
        ChurnReport {
            follows_applied: self.follows,
            unfollows_applied: self.unfollows,
            churn_rejected: self.rejected,
            reopts: self.reopts,
            rebalances: self.rebalances,
            users_migrated: self.users_migrated,
            cross_cost_churned: self.cross_churned,
            base_cost: self.inc.base_cost(),
            final_cost: self.inc.cost(),
            live_staleness_violations: self.live_violations,
            failovers: self.failovers,
            users_failed_over: self.users_failed_over,
            failover_unavailable_ms: self.failover_unavailable_ms,
            views_lost: self.views_lost,
            rejoins: self.rejoins,
            readmits: self.readmits,
            detection_ms: self.detection_ms,
            failover_ms: self.failover_ms,
            catchup_ms: self.catchup_ms,
            readmit_ms: self.readmit_ms,
            // The live per-mutation check fires first; the post-run sweep
            // over the whole dynamic graph backs it up.
            staleness_violation: self
                .first_violation
                .clone()
                .or_else(|| self.inc.validate().err().map(|e| e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piggyback_core::parallelnosy::ParallelNosy;
    use piggyback_core::scheduler::Hybrid;
    use piggyback_graph::GraphBuilder;

    fn fig2_world() -> (CsrGraph, Rates, Schedule) {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        let g = b.build();
        let r = Rates::from_vecs(vec![1.0, 5.0, 5.0], vec![5.0, 5.0, 1.8]);
        let s = ParallelNosy::default()
            .schedule(&Instance::new(&g, &r))
            .schedule;
        (g, r, s)
    }

    fn boot(cfg: ServeConfig) -> ServeRuntime {
        let (g, r, s) = fig2_world();
        ServeRuntime::start(g, r, s, Box::new(Hybrid), cfg)
    }

    #[test]
    fn piggybacked_event_flows_online() {
        let rt = boot(ServeConfig {
            shards: 4,
            workers: 2,
            ..Default::default()
        });
        let mut c = rt.client();
        // Covered edge 0 → 2 through hub 1: Art's share reaches Billie.
        c.share(0);
        let (events, msgs) = c.query(2);
        assert!(msgs >= 1);
        assert!(
            events.iter().any(|e| e.user == 0),
            "piggybacked event missing: {events:?}"
        );
        drop(c);
        let report = rt.shutdown();
        assert!(report.churn.zero_violations());
        assert_eq!(report.final_epoch, 0, "no churn, no swaps");
    }

    #[test]
    fn follow_takes_effect_for_future_shares() {
        let rt = boot(ServeConfig {
            shards: 2,
            workers: 1,
            ..Default::default()
        });
        let mut c = rt.client();
        // No edge 2 → 0 yet: Billie's shares do not reach Art.
        c.share(2);
        let (events, _) = c.query(0);
        assert!(!events.iter().any(|e| e.user == 2));
        assert!(c.follow(2, 0), "new edge must apply");
        assert!(!c.follow(2, 0), "duplicate follow rejected");
        assert!(rt.epoch() >= 1, "churn publishes a new epoch");
        c.share(2);
        let (events, _) = c.query(0);
        assert!(
            events.iter().any(|e| e.user == 2),
            "followed producer's event missing: {events:?}"
        );
        // Unfollow: later shares stop flowing (old events may remain).
        assert!(c.unfollow(2, 0));
        let before = c.query(0).0;
        c.share(2);
        let (after, _) = c.query(0);
        assert_eq!(before, after, "no new event may arrive after unfollow");
        drop(c);
        let report = rt.shutdown();
        assert_eq!(report.churn.follows_applied, 1);
        assert_eq!(report.churn.unfollows_applied, 1);
        assert_eq!(report.churn.churn_rejected, 1);
        assert!(report.churn.zero_violations());
    }

    #[test]
    fn sustained_churn_compacts_overrides() {
        use piggyback_graph::gen::{copying, CopyingConfig};
        let g = copying(CopyingConfig {
            nodes: 100,
            follows_per_node: 4,
            copy_prob: 0.6,
            seed: 1,
        });
        let r = Rates::log_degree(&g, 5.0);
        let s = ParallelNosy::default()
            .schedule(&Instance::new(&g, &r))
            .schedule;
        let rt = ServeRuntime::start(
            g.clone(),
            r,
            s,
            Box::new(Hybrid),
            ServeConfig {
                shards: 2,
                workers: 1,
                // Re-optimization never fires: compaction alone must bound
                // the override map.
                reopt_threshold: f64::INFINITY,
                ..Default::default()
            },
        );
        let mut c = rt.client();
        // 50 × 40 distinct pairs; only pre-existing graph edges reject, so
        // well over OVERRIDE_COMPACT_LIMIT mutations apply.
        let mut applied = 0u64;
        for u in 0..50u32 {
            for v in 50..90u32 {
                if c.follow(u, v) {
                    applied += 1;
                }
            }
        }
        assert!(
            applied > OVERRIDE_COMPACT_LIMIT as u64,
            "storm too small: {applied}"
        );
        assert!(
            rt.snapshot().override_count() <= OVERRIDE_COMPACT_LIMIT,
            "override map must stay bounded: {}",
            rt.snapshot().override_count()
        );
        // Serving still works after compactions.
        c.share(0);
        let _ = c.query(1);
        drop(c);
        let report = rt.shutdown();
        assert!(report.churn.zero_violations());
        assert_eq!(report.churn.reopts, 0);
    }

    #[test]
    fn out_of_model_users_are_rejected() {
        let rt = boot(ServeConfig::default());
        let mut c = rt.client();
        assert!(!c.follow(0, 99), "user 99 has no rates");
        // Share/query for users outside the topology are no-ops, not
        // panics (the flat user → shard map has no home for them).
        assert_eq!(c.share(99), 0);
        let (events, msgs) = c.query(99);
        assert!(events.is_empty());
        assert_eq!(msgs, 0);
        drop(c);
        let report = rt.shutdown();
        assert_eq!(report.churn.churn_rejected, 1);
    }

    #[test]
    fn metrics_capture_spans_serve_and_store() {
        let rt = boot(ServeConfig {
            shards: 2,
            workers: 1,
            ..Default::default()
        });
        let mut c = rt.client();
        c.share(0);
        let _ = c.query(2);
        assert!(c.follow(2, 0));
        let snap = rt.stats_snapshot();
        assert_eq!(snap.counter("serve.ops.shares"), 1);
        assert_eq!(snap.counter("serve.ops.queries"), 1);
        assert_eq!(snap.counter("serve.ops.follows"), 1);
        assert_eq!(snap.histogram("serve.latency.share").unwrap().count(), 1);
        assert!(snap.counter("store.updates") >= 1, "share hit the store");
        assert!(snap.counter("store.queries") >= 1, "query hit the store");
        assert!(snap.counter("store.events_inserted") >= 1);
        // TTL zero disables the cache; the counters still fold in as zero.
        assert!(snap.get("cache.misses").is_some());
        assert_eq!(snap.counter("cache.hits"), 0);
        // The follow published an epoch; the event ring saw the swap.
        let events = rt.metrics().unwrap().events().recent(16);
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, EventKind::EpochSwap { epoch: 1, .. })),
            "missing epoch-swap event: {events:?}"
        );
        drop(c);
        let report = rt.shutdown();
        let fin = report.metrics.expect("metrics are on by default");
        assert_eq!(fin.counter("serve.ops.shares"), 1);
        assert_eq!(fin.counter("serve.ops.follows"), 1);
        assert_eq!(report.churn.live_staleness_violations, 0);
        assert_eq!(fin.counter("churn.staleness_violations"), 0);
    }

    #[test]
    fn metrics_off_serves_and_reports_none() {
        let rt = boot(ServeConfig {
            shards: 2,
            workers: 1,
            metrics: false,
            ..Default::default()
        });
        assert!(rt.metrics().is_none());
        let mut c = rt.client();
        c.share(0);
        let (events, _) = c.query(2);
        assert!(events.iter().any(|e| e.user == 0));
        // Even with metrics off the wire scrape works (the shard counters
        // are part of the store, not the registry).
        let snap = rt.stats_snapshot();
        assert!(snap.counter("store.updates") >= 1);
        assert!(snap.get("serve.ops.shares").is_none(), "no registry");
        drop(c);
        let report = rt.shutdown();
        assert!(report.metrics.is_none());
        assert!(report.churn.zero_violations());
    }

    #[test]
    fn cached_query_skips_messages_and_respects_epoch() {
        let rt = boot(ServeConfig {
            shards: 4,
            workers: 2,
            pull_cache_ttl: std::time::Duration::from_secs(60),
            ..Default::default()
        });
        let mut c = rt.client();
        c.share(0);
        let (_, msgs) = c.query(2);
        assert!(msgs >= 1, "first query fans out");
        let (_, msgs) = c.query(2);
        assert_eq!(msgs, 0, "second query served from cache");
        // A churn-published epoch invalidates the cached result.
        assert!(c.follow(2, 1));
        let (_, msgs) = c.query(2);
        assert!(msgs >= 1, "epoch swap must invalidate the cache");
        drop(c);
        let report = rt.shutdown();
        assert_eq!(report.cache_hits, 1);
        assert!(report.churn.zero_violations());
    }
}
