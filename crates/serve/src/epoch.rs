//! Epoch-swapped serving schedules.
//!
//! The hot serving path cannot take a lock around schedule lookups while a
//! churn manager mutates the schedule underneath it. Instead, the schedule
//! is *compiled* into immutable per-user push/pull sets ([`ServingSchedule`])
//! and published through an [`EpochHandle`]: readers grab an `Arc` snapshot
//! with one uncontended read-lock acquisition (arc-swap style — the write
//! side holds the lock only for the pointer exchange), then use that
//! snapshot for the whole request. A request therefore sees exactly one
//! epoch end-to-end: concurrent swaps can never show it a mix of the old
//! and new schedule.
//!
//! Churn publishes cheap *overrides* on top of the compiled base — only
//! the users whose serving sets a follow/unfollow touched — while a full
//! re-optimization replaces the base wholesale and clears the overrides.
//! Overrides are layered to keep the per-publish copy small: a tiny
//! `delta` map (the last few publishes) is deep-cloned per epoch, while
//! the flattened older overrides ride behind an `Arc` and cost a refcount
//! bump; once the delta outgrows [`DELTA_LIMIT`] it is folded into a new
//! flattened layer, amortizing the large copy over many publishes.
//!
//! The snapshot also carries the cluster [`Topology`]: a live rebalance
//! publishes a new topology through the same swap, so a request can never
//! route one batch with the old `user → shard` map and the next with the
//! new one.

use std::sync::Arc;

use parking_lot::RwLock;
use piggyback_core::schedule::Schedule;
use piggyback_graph::fx::FxHashMap;
use piggyback_graph::{CsrGraph, NodeId};
use piggyback_store::topology::Topology;

/// Fully compiled per-user serving sets (`h[u]` and `l[u]` of Algorithm 3).
#[derive(Clone, Debug, Default)]
pub struct CompiledSets {
    /// `push[u]`: views to update when `u` shares (excluding `u` itself).
    pub push: Vec<Vec<NodeId>>,
    /// `pull[v]`: views to query when `v` reads its stream (excluding `v`).
    pub pull: Vec<Vec<NodeId>>,
}

/// Per-user churn override: a recompiled set for one user, shadowing the
/// compiled base. `None` means "base is still current" for that side.
#[derive(Clone, Debug, Default)]
pub struct UserOverride {
    push: Option<Vec<NodeId>>,
    pull: Option<Vec<NodeId>>,
}

impl UserOverride {
    /// Folds `other` over `self` side-by-side (newer wins where set).
    fn absorb(&mut self, other: UserOverride) {
        if other.push.is_some() {
            self.push = other.push;
        }
        if other.pull.is_some() {
            self.pull = other.pull;
        }
    }
}

/// Delta entries folded into the shared flattened layer once exceeded.
/// Bounds the per-publish deep copy: a publish clones at most this many
/// override entries, and the flattened layer is copied once per
/// `DELTA_LIMIT` publishes instead of on every one.
const DELTA_LIMIT: usize = 32;

/// One immutable epoch of the serving schedule.
#[derive(Clone, Debug)]
pub struct ServingSchedule {
    epoch: u64,
    base: Arc<CompiledSets>,
    /// Flattened older overrides; shared across epochs (Arc bump).
    merged: Arc<FxHashMap<NodeId, UserOverride>>,
    /// Overrides from the most recent publishes; deep-cloned per epoch,
    /// kept under [`DELTA_LIMIT`] entries. Shadows `merged` per side.
    delta: FxHashMap<NodeId, UserOverride>,
    topology: Arc<Topology>,
}

impl ServingSchedule {
    /// Compiles per-user serving sets from an optimized `(graph, schedule)`
    /// pair; O(n + m).
    pub fn compile(g: &CsrGraph, s: &Schedule, topology: Arc<Topology>, epoch: u64) -> Self {
        assert_eq!(g.edge_count(), s.edge_count());
        let n = g.node_count();
        assert!(
            topology.users() >= n,
            "topology covers {} users, graph has {n}",
            topology.users()
        );
        let mut sets = CompiledSets {
            push: Vec::with_capacity(n),
            pull: Vec::with_capacity(n),
        };
        for u in 0..n as NodeId {
            sets.push.push(s.push_set_of(g, u));
            sets.pull.push(s.pull_set_of(g, u));
        }
        ServingSchedule {
            epoch,
            base: Arc::new(sets),
            merged: Arc::new(FxHashMap::default()),
            delta: FxHashMap::default(),
            topology,
        }
    }

    /// Builds an epoch directly from compiled sets (re-optimization path
    /// and tests).
    pub fn from_sets(sets: CompiledSets, topology: Arc<Topology>, epoch: u64) -> Self {
        ServingSchedule {
            epoch,
            base: Arc::new(sets),
            merged: Arc::new(FxHashMap::default()),
            delta: FxHashMap::default(),
            topology,
        }
    }

    /// The cluster topology this epoch serves under. Requests route every
    /// batch of their lifetime through this one map.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// The next epoch: identical serving sets, new topology — published by
    /// the churn manager after a live rebalance has migrated the moved
    /// views.
    pub fn with_topology(&self, topology: Arc<Topology>) -> Self {
        ServingSchedule {
            epoch: self.epoch + 1,
            base: Arc::clone(&self.base),
            merged: Arc::clone(&self.merged),
            delta: self.delta.clone(),
            topology,
        }
    }

    /// The epoch number (strictly increasing across publishes).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of users the base compilation covers.
    pub fn users(&self) -> usize {
        self.base.push.len()
    }

    /// Number of active churn override entries (counting a user once per
    /// layer it appears in — an upper bound used by the compaction
    /// trigger).
    pub fn override_count(&self) -> usize {
        self.merged.len() + self.delta.len()
    }

    /// The views to update when `u` shares an event (not counting `u`).
    pub fn push_targets(&self, u: NodeId) -> &[NodeId] {
        if let Some(p) = self.delta.get(&u).and_then(|o| o.push.as_deref()) {
            return p;
        }
        if let Some(p) = self.merged.get(&u).and_then(|o| o.push.as_deref()) {
            return p;
        }
        self.base.push.get(u as usize).map_or(&[], Vec::as_slice)
    }

    /// The views to query when `v` reads its stream (not counting `v`).
    pub fn pull_sources(&self, v: NodeId) -> &[NodeId] {
        if let Some(p) = self.delta.get(&v).and_then(|o| o.pull.as_deref()) {
            return p;
        }
        if let Some(p) = self.merged.get(&v).and_then(|o| o.pull.as_deref()) {
            return p;
        }
        self.base.pull.get(v as usize).map_or(&[], Vec::as_slice)
    }

    /// Fills `out` with the update targets of one share from `u`: the push
    /// set plus `u`'s own view. The hot path's scratch-buffer counterpart
    /// of [`push_targets`](ServingSchedule::push_targets) — no per-request
    /// `Vec` once the caller's buffer is warm.
    pub fn collect_push_targets(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend_from_slice(self.push_targets(u));
        out.push(u);
    }

    /// Fills `out` with the query targets of one stream read from `v`: the
    /// pull set plus `v`'s own view.
    pub fn collect_pull_sources(&self, v: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend_from_slice(self.pull_sources(v));
        out.push(v);
    }

    /// The next epoch: same base, with the given users' sets replaced.
    /// The churn manager (single writer) builds this and swaps it in.
    /// Cost per publish: a deep clone of the (≤ [`DELTA_LIMIT`]-entry)
    /// delta plus an Arc bump of the flattened layer; the flatten itself
    /// runs once per `DELTA_LIMIT` publishes.
    pub fn with_updates(
        &self,
        push_updates: impl IntoIterator<Item = (NodeId, Vec<NodeId>)>,
        pull_updates: impl IntoIterator<Item = (NodeId, Vec<NodeId>)>,
    ) -> Self {
        let mut merged = Arc::clone(&self.merged);
        let mut delta = self.delta.clone();
        for (u, set) in push_updates {
            delta.entry(u).or_default().push = Some(set);
        }
        for (v, set) in pull_updates {
            delta.entry(v).or_default().pull = Some(set);
        }
        if delta.len() > DELTA_LIMIT {
            let mut flat = (*merged).clone();
            for (u, o) in delta.drain() {
                flat.entry(u).or_default().absorb(o);
            }
            merged = Arc::new(flat);
        }
        ServingSchedule {
            epoch: self.epoch + 1,
            base: Arc::clone(&self.base),
            merged,
            delta,
            topology: Arc::clone(&self.topology),
        }
    }
}

/// The swap point between the serving path and the churn manager.
///
/// Readers call [`load`](EpochHandle::load) once per request; the single
/// writer (the churn manager) calls [`swap`](EpochHandle::swap). The write
/// lock is held only for the pointer exchange, so the read path never
/// blocks for longer than a pointer copy.
#[derive(Debug)]
pub struct EpochHandle {
    slot: RwLock<Arc<ServingSchedule>>,
}

impl EpochHandle {
    /// Wraps an initial schedule snapshot.
    pub fn new(initial: ServingSchedule) -> Self {
        EpochHandle {
            slot: RwLock::new(Arc::new(initial)),
        }
    }

    /// The current snapshot. Requests must call this exactly once and use
    /// the returned snapshot for their entire lifetime.
    pub fn load(&self) -> Arc<ServingSchedule> {
        Arc::clone(&self.slot.read())
    }

    /// Publishes `next`, returning the previous snapshot.
    pub fn swap(&self, next: ServingSchedule) -> Arc<ServingSchedule> {
        let next = Arc::new(next);
        let mut slot = self.slot.write();
        std::mem::replace(&mut *slot, next)
    }

    /// Epoch of the current snapshot.
    pub fn epoch(&self) -> u64 {
        self.slot.read().epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piggyback_core::baseline::hybrid_schedule;
    use piggyback_graph::gen::{copying, CopyingConfig};
    use piggyback_workload::Rates;

    #[test]
    fn compile_matches_schedule_sets() {
        let g = copying(CopyingConfig {
            nodes: 80,
            follows_per_node: 4,
            copy_prob: 0.6,
            seed: 5,
        });
        let r = Rates::log_degree(&g, 5.0);
        let s = hybrid_schedule(&g, &r);
        let topology = Arc::new(Topology::hash(g.node_count(), 4, 1));
        let compiled = ServingSchedule::compile(&g, &s, Arc::clone(&topology), 7);
        assert_eq!(compiled.topology().servers(), 4);
        assert_eq!(compiled.epoch(), 7);
        assert_eq!(compiled.users(), g.node_count());
        for u in 0..g.node_count() as NodeId {
            assert_eq!(compiled.push_targets(u), s.push_set_of(&g, u).as_slice());
            assert_eq!(compiled.pull_sources(u), s.pull_set_of(&g, u).as_slice());
        }
    }

    #[test]
    fn collect_targets_append_self_and_reuse_the_buffer() {
        let sets = CompiledSets {
            push: vec![vec![1, 2], vec![]],
            pull: vec![vec![], vec![0]],
        };
        let s = ServingSchedule::from_sets(sets, Arc::new(Topology::single_server(2)), 0);
        let mut buf = vec![9, 9, 9];
        s.collect_push_targets(0, &mut buf);
        assert_eq!(buf, vec![1, 2, 0]);
        s.collect_pull_sources(1, &mut buf);
        assert_eq!(buf, vec![0, 1]);
    }

    #[test]
    fn unknown_users_have_empty_sets() {
        let compiled = ServingSchedule::from_sets(
            CompiledSets::default(),
            Arc::new(Topology::single_server(0)),
            0,
        );
        assert!(compiled.push_targets(42).is_empty());
        assert!(compiled.pull_sources(42).is_empty());
    }

    #[test]
    fn overrides_shadow_base_and_bump_epoch() {
        let sets = CompiledSets {
            push: vec![vec![1], vec![2]],
            pull: vec![vec![], vec![0]],
        };
        let s0 = ServingSchedule::from_sets(sets, Arc::new(Topology::single_server(2)), 0);
        let s1 = s0.with_updates([(0, vec![1, 3])], [(1, vec![0, 3])]);
        assert_eq!(s1.epoch(), 1);
        assert_eq!(s1.push_targets(0), &[1, 3]);
        assert_eq!(s1.pull_sources(1), &[0, 3]);
        // Untouched users still read the shared base.
        assert_eq!(s1.push_targets(1), &[2]);
        // The old epoch is unchanged (immutability).
        assert_eq!(s0.push_targets(0), &[1]);
        assert_eq!(s0.epoch(), 0);
    }

    #[test]
    fn overrides_survive_delta_flattening() {
        // Push enough single-user publishes through one chain of epochs to
        // trigger several delta → merged flattens; every override must
        // stay visible and the newest one must win.
        let n = 200usize;
        let sets = CompiledSets {
            push: vec![vec![]; n],
            pull: vec![vec![]; n],
        };
        let mut s = ServingSchedule::from_sets(sets, Arc::new(Topology::single_server(n)), 0);
        for u in 0..n as NodeId {
            s = s.with_updates([(u, vec![u + 1])], [(u, vec![u + 2])]);
        }
        // Overwrite a user that has certainly been flattened by now.
        s = s.with_updates([(0, vec![77])], []);
        assert_eq!(s.epoch(), n as u64 + 1);
        assert_eq!(s.push_targets(0), &[77], "newest layer must win");
        assert_eq!(s.pull_sources(0), &[2], "older side must survive");
        for u in 1..n as NodeId {
            assert_eq!(s.push_targets(u), &[u + 1]);
            assert_eq!(s.pull_sources(u), &[u + 2]);
        }
    }

    #[test]
    fn handle_swap_returns_previous() {
        let t = Arc::new(Topology::single_server(0));
        let h = EpochHandle::new(ServingSchedule::from_sets(
            CompiledSets::default(),
            Arc::clone(&t),
            0,
        ));
        assert_eq!(h.epoch(), 0);
        let prev = h.swap(ServingSchedule::from_sets(CompiledSets::default(), t, 1));
        assert_eq!(prev.epoch(), 0);
        assert_eq!(h.load().epoch(), 1);
    }

    #[test]
    fn with_topology_republishes_sets_under_a_new_map() {
        let sets = CompiledSets {
            push: vec![vec![1], vec![0]],
            pull: vec![vec![1], vec![0]],
        };
        let old = Arc::new(Topology::hash(2, 4, 0));
        let s0 = ServingSchedule::from_sets(sets, Arc::clone(&old), 0)
            .with_updates([(0, vec![1, 9])], []);
        let new = Arc::new(Topology::hash(2, 4, 99));
        let s1 = s0.with_topology(Arc::clone(&new));
        assert_eq!(s1.epoch(), s0.epoch() + 1);
        // Serving sets (base and overrides) survive the topology swap.
        assert_eq!(s1.push_targets(0), s0.push_targets(0));
        assert_eq!(s1.pull_sources(1), s0.pull_sources(1));
        assert!(Arc::ptr_eq(s1.topology(), &new));
        // The old epoch still routes through the old map (immutability).
        assert!(Arc::ptr_eq(s0.topology(), &old));
    }
}
