//! # piggyback-serve — the online feed-serving runtime
//!
//! The paper's prototype (§4.3) replays a fixed trace against a *static*
//! schedule. A production system serves live traffic: follows arrive
//! mid-flight, rates drift, and the schedule must be maintained online
//! (§3.3) without stopping the serving path. This crate composes the
//! existing layers into exactly that system:
//!
//! * [`ops`] — the front end: an interleaved stream of `Share`, `Query`,
//!   `Follow` and `Unfollow` operations (the [`piggyback_workload::Op`]
//!   alphabet) entering via bounded channels.
//! * [`epoch`] — the epoch-swapped schedule handle: per-user push/pull
//!   sets compiled from a [`Schedule`](piggyback_core::schedule::Schedule),
//!   published as immutable snapshots that the hot read path picks up with
//!   a single uncontended read-lock acquisition (arc-swap style). A
//!   request uses exactly one snapshot end-to-end, so concurrent swaps can
//!   never show it a mix of two schedules.
//! * [`cache`] — the staleness-bounded pull cache: Theorem 1 guarantees
//!   every event is visible within one propagation step; an operator who
//!   accepts a bounded staleness window can trade freshness for query
//!   fan-out. The budget becomes a runtime TTL.
//! * [`runtime`] — the sharded serving core ([`piggyback_store`] shard
//!   workers behind channels, one batched message per touched server) plus
//!   the churn manager: `Follow`/`Unfollow` flow through
//!   [`IncrementalScheduler`](piggyback_core::incremental::IncrementalScheduler),
//!   each mutation publishes a fresh epoch, and when the accumulated
//!   overlay cost degradation crosses a configurable threshold a full
//!   re-optimization runs on a background thread through any registered
//!   [`Scheduler`](piggyback_core::scheduler::Scheduler), swapping the
//!   fresh schedule in atomically.
//! * [`harness`] — the load harness: closed-loop and open-loop (fixed
//!   arrival rate) generators reporting throughput plus p50/p95/p99
//!   latency via the [`piggyback_store::latency`] histogram.
//! * [`metrics`] — the runtime's live instrument bundle
//!   ([`piggyback_obs`]): per-operation latency histograms and counters,
//!   churn gauges, and the control-plane event ring. On by default
//!   ([`ServeConfig::metrics`]); scraped over the wire via
//!   [`ServeRuntime::stats_snapshot`] or dumped periodically by the
//!   harness (`stats_interval`).
//! * Fault tolerance — with [`ServeConfig::replication`] ≥ 2 writes fan
//!   out to every replica slot, reads route to the healthiest replica, a
//!   heartbeat failure detector ([`piggyback_store::health`]) classifies
//!   shards Up/Suspect/Down, and the churn manager doubles as a failover
//!   controller: a dead primary is re-pointed at surviving replicas
//!   through the same epoch-swap machinery after a non-destructive
//!   catch-up copy. The [`harness`] can kill shards mid-run
//!   ([`ChaosSpec`]) through the store's fault injector
//!   ([`piggyback_store::fault`]).

pub mod cache;
pub mod config;
pub mod epoch;
pub mod harness;
pub mod metrics;
pub mod ops;
pub mod runtime;

pub use cache::PullCache;
pub use config::{ReoptMode, RpcMode, ServeConfig};
pub use epoch::{EpochHandle, ServingSchedule};
pub use harness::{run_harness, Arrival, ChaosSpec, HarnessConfig, HarnessReport};
pub use metrics::ServeMetrics;
pub use ops::{ChurnReport, ServeReport};
pub use runtime::{ServeClient, ServeRuntime};
