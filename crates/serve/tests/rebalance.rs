//! Live topology rebalancing: when churn pushes enough message rate
//! across servers, the churn manager re-partitions, migrates the moved
//! views shard-to-shard, and publishes the new topology through the same
//! epoch swap the schedule uses.
//!
//! The staleness contract under rebalance: *zero violations* — under
//! quiescent traffic every event visible before a rebalance is still
//! visible after it (views travel with their users), the post-run
//! bounded-staleness validation stays clean, and no request ever routes
//! through a mix of two topologies (each request loads one snapshot; the
//! snapshot owns both the serving sets and the `user → shard` map).
//! Updates that *race* a migration follow the store's memcached model —
//! a concurrently-written event may land at a view's old home and miss
//! later queries, like any re-placement cache miss (see
//! `ChurnManager::rebalance`); schedule-level staleness is still
//! validated clean under concurrent traffic below.

use std::collections::HashSet;

use piggyback_core::scheduler::{Hybrid, Instance, Scheduler};
use piggyback_graph::gen::{copying, CopyingConfig};
use piggyback_graph::{CsrGraph, NodeId};
use piggyback_serve::{ServeConfig, ServeRuntime};
use piggyback_store::topology::PartitionStrategy;
use piggyback_workload::Rates;

fn world(nodes: usize) -> (CsrGraph, Rates) {
    let g = copying(CopyingConfig {
        nodes,
        follows_per_node: 5,
        copy_prob: 0.7,
        seed: 6,
    });
    let r = Rates::log_degree(&g, 5.0);
    (g, r)
}

fn boot(g: &CsrGraph, r: &Rates, config: ServeConfig) -> ServeRuntime {
    let s = Hybrid.schedule(&Instance::new(g, r)).schedule;
    ServeRuntime::start(g.clone(), r.clone(), s, Box::new(Hybrid), config)
}

/// The core acceptance property: a rebalance between requests loses
/// nothing. Events shared before the rebalance are still served after
/// it, for users that moved shards and users that did not.
#[test]
fn rebalance_preserves_every_pre_rebalance_event() {
    let (g, r) = world(200);
    let rt = boot(
        &g,
        &r,
        ServeConfig {
            shards: 8,
            workers: 2,
            partition: PartitionStrategy::ScheduleAware,
            // Any cross-server churn cost triggers a rebalance.
            rebalance_threshold: 1e-9,
            // Isolate rebalancing from re-optimization.
            reopt_threshold: f64::INFINITY,
            view_capacity: 0,
            ..Default::default()
        },
    );
    let mut c = rt.client();
    // Every user shares one event under the boot topology.
    for u in 0..200u32 {
        c.share(u);
    }
    let topo_before = rt.snapshot().topology().clone();
    // Churn the graph: with the near-zero threshold every cross-server
    // follow triggers a rebalance, and the accumulated new edges pull the
    // schedule-aware partition away from the boot topology.
    for v in 0..200u32 {
        let u = (v + 7) % 200;
        if u != v {
            c.follow(u, v);
        }
    }
    let topo_after = rt.snapshot().topology().clone();
    assert_ne!(
        topo_before.moved_users(&topo_after).len(),
        0,
        "rebalance must re-home at least one user"
    );
    // Every user still sees their own pre-rebalance event — including the
    // users whose views were migrated to a different shard.
    for u in 0..200u32 {
        let (events, _) = c.query(u);
        assert!(
            events.iter().any(|e| e.user == u),
            "user {u} lost their own event after rebalance \
             (moved: {})",
            topo_before.server_of(u) != topo_after.server_of(u)
        );
    }
    drop(c);
    let report = rt.shutdown();
    assert!(report.churn.rebalances >= 1, "no rebalance fired");
    assert!(report.churn.users_migrated > 0, "no view migrated");
    assert!(
        report.churn.zero_violations(),
        "staleness violated: {:?}",
        report.churn.staleness_violation
    );
}

/// Piggybacked delivery works across a rebalance: an event pushed to a hub
/// view before the migration is still found by the consumer pulling that
/// hub view at its new home.
#[test]
fn piggybacked_delivery_survives_migration() {
    let (g, r) = world(150);
    let rt = boot(
        &g,
        &r,
        ServeConfig {
            shards: 4,
            workers: 2,
            partition: PartitionStrategy::Ldg,
            rebalance_threshold: 1e-9,
            reopt_threshold: f64::INFINITY,
            view_capacity: 0,
            top_k: usize::MAX,
            ..Default::default()
        },
    );
    let mut c = rt.client();
    for u in 0..150u32 {
        c.share(u);
    }
    // Enough churn to fire several rebalances (every cross-server follow
    // crosses the tiny threshold).
    for i in 0..60u32 {
        c.follow(i, (i + 11) % 150);
    }
    // Every consumer can still assemble every producer it follows.
    for v in g.nodes().take(40) {
        let (events, _) = c.query(v);
        let have: HashSet<NodeId> = events.iter().map(|e| e.user).collect();
        for &p in g.in_neighbors(v) {
            assert!(
                have.contains(&p),
                "consumer {v} missing producer {p} after rebalance"
            );
        }
    }
    drop(c);
    let report = rt.shutdown();
    assert!(report.churn.zero_violations());
}

/// Rebalancing under concurrent multi-client traffic: shares, queries and
/// churn race with repeated rebalances; the run must stay violation-free
/// and the runtime responsive.
#[test]
fn concurrent_traffic_across_repeated_rebalances_stays_clean() {
    let (g, r) = world(300);
    let rt = boot(
        &g,
        &r,
        ServeConfig {
            shards: 16,
            workers: 4,
            partition: PartitionStrategy::ScheduleAware,
            rebalance_threshold: 0.002,
            reopt_threshold: f64::INFINITY,
            ..Default::default()
        },
    );
    std::thread::scope(|s| {
        for t in 0..3 {
            let mut c = rt.client();
            s.spawn(move || {
                for i in 0..400u32 {
                    let u = (i * 17 + t * 131) % 300;
                    match i % 4 {
                        0 => {
                            c.share(u);
                        }
                        1 | 2 => {
                            let _ = c.query(u);
                        }
                        _ => {
                            let v = (u + 1 + i % 37) % 300;
                            if u != v {
                                // Alternate add/remove to keep churn flowing.
                                if !c.follow(u, v) {
                                    c.unfollow(u, v);
                                }
                            }
                        }
                    }
                }
            });
        }
    });
    let report = rt.shutdown();
    assert!(
        report.churn.rebalances >= 1,
        "threshold never crossed: {} follows",
        report.churn.follows_applied
    );
    assert!(
        report.churn.zero_violations(),
        "staleness violated under concurrent rebalancing: {:?}",
        report.churn.staleness_violation
    );
    assert!(report.final_epoch > 0);
}
