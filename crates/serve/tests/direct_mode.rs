//! The caller-runs transport ([`RpcMode::Direct`]) end to end: the same
//! coalesced protocol as the batched plane, executed inline on the issuing
//! thread. Everything the worker-pool planes guarantee must hold
//! unchanged — delivery, message accounting, churn, live rebalancing with
//! view migration, and zero staleness violations.

use std::collections::HashSet;

use piggyback_core::scheduler::{Hybrid, Instance, Scheduler};
use piggyback_graph::gen::{copying, CopyingConfig};
use piggyback_graph::{CsrGraph, NodeId};
use piggyback_serve::{RpcMode, ServeConfig, ServeRuntime};
use piggyback_store::topology::PartitionStrategy;
use piggyback_workload::Rates;

fn world(nodes: usize) -> (CsrGraph, Rates) {
    let g = copying(CopyingConfig {
        nodes,
        follows_per_node: 5,
        copy_prob: 0.7,
        seed: 6,
    });
    let r = Rates::log_degree(&g, 5.0);
    (g, r)
}

fn boot(g: &CsrGraph, r: &Rates, config: ServeConfig) -> ServeRuntime {
    let s = Hybrid.schedule(&Instance::new(g, r)).schedule;
    ServeRuntime::start(g.clone(), r.clone(), s, Box::new(Hybrid), config)
}

/// Direct and batched planes answer every query identically (same events,
/// same message counts) on the same deterministic op sequence.
#[test]
fn direct_matches_batched_end_to_end() {
    let (g, r) = world(150);
    let run = |rpc: RpcMode| {
        let rt = boot(
            &g,
            &r,
            ServeConfig {
                shards: 8,
                workers: 2,
                rpc,
                view_capacity: 0,
                top_k: usize::MAX,
                ..Default::default()
            },
        );
        let mut c = rt.client();
        for u in 0..150u32 {
            c.share(u);
        }
        let mut streams = Vec::new();
        let mut messages = 0u64;
        for v in 0..150u32 {
            let (events, msgs) = c.query(v);
            let users: Vec<NodeId> = events.iter().map(|e| e.user).collect();
            streams.push(users);
            messages += msgs;
        }
        drop(c);
        let report = rt.shutdown();
        assert!(report.churn.zero_violations());
        (streams, messages)
    };
    let (batched_streams, batched_msgs) = run(RpcMode::Batched);
    let (direct_streams, direct_msgs) = run(RpcMode::Direct);
    assert_eq!(batched_streams, direct_streams, "stream contents diverged");
    assert_eq!(batched_msgs, direct_msgs, "message accounting diverged");
}

/// Concurrent direct-mode clients with churn: multiple threads execute
/// shard work inline against the same shard mutexes while the churn
/// manager publishes epochs.
#[test]
fn concurrent_direct_clients_stay_consistent() {
    let (g, r) = world(200);
    let rt = boot(
        &g,
        &r,
        ServeConfig {
            shards: 16,
            workers: 1, // ignored: no worker threads in direct mode
            rpc: RpcMode::Direct,
            ..Default::default()
        },
    );
    std::thread::scope(|s| {
        for t in 0..4 {
            let mut c = rt.client();
            s.spawn(move || {
                for i in 0..300u32 {
                    let u = (i * 13 + t * 53) % 200;
                    match i % 4 {
                        0 => {
                            c.share(u);
                        }
                        3 => {
                            let v = (u + 1 + i % 29) % 200;
                            if u != v && !c.follow(u, v) {
                                c.unfollow(u, v);
                            }
                        }
                        _ => {
                            let _ = c.query(u);
                        }
                    }
                }
            });
        }
    });
    let report = rt.shutdown();
    assert!(report.churn.follows_applied > 0);
    assert!(
        report.churn.zero_violations(),
        "staleness violated: {:?}",
        report.churn.staleness_violation
    );
}

/// Live rebalancing in direct mode: the churn manager's migration requests
/// execute inline (no worker pool exists), views still travel with their
/// users, and piggybacked delivery survives.
#[test]
fn rebalance_migrates_views_without_a_worker_pool() {
    let (g, r) = world(150);
    let rt = boot(
        &g,
        &r,
        ServeConfig {
            shards: 4,
            workers: 2,
            rpc: RpcMode::Direct,
            partition: PartitionStrategy::Ldg,
            rebalance_threshold: 1e-9,
            reopt_threshold: f64::INFINITY,
            view_capacity: 0,
            top_k: usize::MAX,
            ..Default::default()
        },
    );
    let mut c = rt.client();
    for u in 0..150u32 {
        c.share(u);
    }
    for i in 0..60u32 {
        c.follow(i, (i + 11) % 150);
    }
    for v in g.nodes().take(40) {
        let (events, _) = c.query(v);
        let have: HashSet<NodeId> = events.iter().map(|e| e.user).collect();
        for &p in g.in_neighbors(v) {
            assert!(
                have.contains(&p),
                "consumer {v} missing producer {p} after direct-mode rebalance"
            );
        }
    }
    drop(c);
    let report = rt.shutdown();
    assert!(report.churn.rebalances >= 1, "no rebalance fired");
    assert!(report.churn.users_migrated > 0, "no view migrated");
    assert!(report.churn.zero_violations());
}
