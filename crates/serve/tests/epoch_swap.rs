//! Epoch-swap consistency: a request that loaded a schedule snapshot sees
//! that schedule *in full* — never a mix of old and new — no matter how
//! many swaps land while the request is in flight.
//!
//! The serving snapshots encode their epoch in every user's serving sets,
//! so any torn read would be detected as a set whose contents disagree
//! with the snapshot's epoch tag.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::bounded;
use piggyback_graph::NodeId;
use piggyback_serve::epoch::{CompiledSets, EpochHandle, ServingSchedule};
use piggyback_store::topology::Topology;

const USERS: usize = 64;

/// A schedule whose every set spells out its epoch: user `u` pushes to
/// `[epoch, u]` and pulls from `[epoch, u, u]`.
fn tagged(epoch: u64) -> ServingSchedule {
    let tag = epoch as NodeId;
    let sets = CompiledSets {
        push: (0..USERS as NodeId).map(|u| vec![tag, u]).collect(),
        pull: (0..USERS as NodeId).map(|u| vec![tag, u, u]).collect(),
    };
    // Each epoch also carries its own topology, seeded by the epoch
    // number: a torn read of the topology would route through a map that
    // disagrees with the snapshot's serving sets.
    ServingSchedule::from_sets(sets, Arc::new(Topology::hash(USERS, 4, epoch)), epoch)
}

/// Asserts that every set of `snap` matches its own epoch tag — the "no
/// mix" invariant a request relies on.
fn assert_uniform(snap: &ServingSchedule) {
    let tag = snap.epoch() as NodeId;
    let expect = Topology::hash(USERS, 4, snap.epoch());
    for u in 0..USERS as NodeId {
        assert_eq!(snap.push_targets(u), &[tag, u], "torn push set at {u}");
        assert_eq!(snap.pull_sources(u), &[tag, u, u], "torn pull set at {u}");
        assert_eq!(
            snap.topology().server_of(u),
            expect.server_of(u),
            "topology from a different epoch at {u}"
        );
    }
}

/// Channel-barrier proof: the exact interleaving "request loads → swap
/// lands → request keeps reading" yields the *old* schedule in full, and
/// the next load yields the *new* schedule in full.
#[test]
fn request_spanning_a_swap_sees_one_schedule_in_full() {
    let handle = Arc::new(EpochHandle::new(tagged(0)));
    let (loaded_tx, loaded_rx) = bounded::<()>(0);
    let (swapped_tx, swapped_rx) = bounded::<()>(0);
    let reader = {
        let handle = Arc::clone(&handle);
        std::thread::spawn(move || {
            // The request begins: one load, held across the swap.
            let snap = handle.load();
            assert_eq!(snap.epoch(), 0);
            loaded_tx.send(()).unwrap(); // barrier: swap may proceed
            swapped_rx.recv().unwrap(); // barrier: swap has landed
                                        // The in-flight request still sees epoch 0, fully intact.
            assert_uniform(&snap);
            assert_eq!(snap.epoch(), 0);
            // A fresh load — the next request — is fully epoch 1.
            let next = handle.load();
            assert_eq!(next.epoch(), 1);
            assert_uniform(&next);
        })
    };
    loaded_rx.recv().unwrap();
    let prev = handle.swap(tagged(1));
    assert_eq!(prev.epoch(), 0);
    swapped_tx.send(()).unwrap();
    reader.join().unwrap();
}

/// Stress the handle: readers hammer load-and-verify while a writer swaps
/// thousands of epochs. Every observed snapshot must be internally
/// uniform, and epochs must never run backwards for any single reader.
#[test]
fn concurrent_swaps_never_tear_or_reorder() {
    let handle = Arc::new(EpochHandle::new(tagged(0)));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|s| {
        let mut readers = Vec::new();
        for _ in 0..4 {
            let handle = Arc::clone(&handle);
            let stop = Arc::clone(&stop);
            readers.push(s.spawn(move || {
                let mut last = 0u64;
                let mut distinct = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let snap = handle.load();
                    assert_uniform(&snap);
                    assert!(
                        snap.epoch() >= last,
                        "epoch ran backwards: {} after {}",
                        snap.epoch(),
                        last
                    );
                    if snap.epoch() != last {
                        distinct += 1;
                    }
                    last = snap.epoch();
                }
                distinct
            }));
        }
        for e in 1..=2000u64 {
            handle.swap(tagged(e));
            if e % 500 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0, "readers never observed a swap landing");
    });
}

/// Churn-style updates (overrides on a shared base) must also be atomic:
/// a snapshot taken mid-stream reflects a prefix of the update sequence,
/// never a partially applied update.
#[test]
fn override_publishes_are_atomic() {
    // Base: every user pushes to [u]. Update k rewrites user (k % USERS)
    // to push [u, k] and pull [u, k] *in one publish*; observing one side
    // without the other is a torn update.
    let sets = CompiledSets {
        push: (0..USERS as NodeId).map(|u| vec![u]).collect(),
        pull: (0..USERS as NodeId).map(|u| vec![u]).collect(),
    };
    let handle = Arc::new(EpochHandle::new(ServingSchedule::from_sets(
        sets,
        Arc::new(Topology::single_server(USERS)),
        0,
    )));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|s| {
        for _ in 0..3 {
            let handle = Arc::clone(&handle);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let snap = handle.load();
                    for u in 0..USERS as NodeId {
                        let push = snap.push_targets(u).to_vec();
                        let pull = snap.pull_sources(u).to_vec();
                        assert_eq!(
                            push, pull,
                            "torn override for user {u}: one publish must update both sides"
                        );
                    }
                }
            });
        }
        for k in 1..=1000u32 {
            let u = (k as usize % USERS) as NodeId;
            let snap = handle.load();
            let next = snap.with_updates([(u, vec![u, k])], [(u, vec![u, k])]);
            handle.swap(next);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
}
