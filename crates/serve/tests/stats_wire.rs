//! Differential test for the `Stats` wire request: an identical operation
//! stream must produce **identical per-shard counters** whether the shard
//! plane runs caller-side (`RpcMode::Direct`) or through the batched
//! worker pool (`RpcMode::Batched`). Both planes route every request —
//! including the stats scrape itself — through the store's single
//! `handle_request`, so any divergence means one plane is doing different
//! work, not just reporting differently.
//!
//! The same harness also pins down the replication layer's differential
//! guarantees: heartbeat probes touch no store counters (a monitored run
//! is byte-identical to an unmonitored one), and at replication 2 the two
//! planes still agree with each other.

use std::time::{Duration, Instant};

use piggyback_core::scheduler::{by_name, Instance};
use piggyback_graph::gen::{copying, CopyingConfig};
use piggyback_graph::CsrGraph;
use piggyback_serve::{ReoptMode, RpcMode, ServeConfig, ServeRuntime};
use piggyback_store::server::ShardStats;
use piggyback_store::FaultPlan;
use piggyback_workload::{OpTrace, Rates};

fn world() -> (CsrGraph, Rates) {
    let g = copying(CopyingConfig {
        nodes: 200,
        follows_per_node: 5,
        copy_prob: 0.7,
        seed: 3,
    });
    let r = Rates::log_degree(&g, 5.0);
    (g, r)
}

fn drive_with(
    rpc: RpcMode,
    replication: usize,
    heartbeat: Duration,
) -> (Vec<ShardStats>, piggyback_obs::Snapshot) {
    let (g, r) = world();
    let schedule = by_name("hybrid")
        .unwrap()
        .schedule(&Instance::new(&g, &r))
        .schedule;
    let rt = ServeRuntime::start(
        g,
        r.clone(),
        schedule,
        by_name("hybrid").unwrap(),
        ServeConfig {
            shards: 4,
            workers: 2,
            rpc,
            replication,
            heartbeat_interval: heartbeat,
            ..Default::default()
        },
    );
    let mut c = rt.client();
    // Deterministic share/query stream (no churn: the store counters must
    // be a pure function of the ops, not of churn-thread interleaving).
    let mut trace = OpTrace::new(&r, 0.0, 99);
    for _ in 0..500 {
        c.apply_op(trace.next_op());
    }
    let per_shard = rt.shard_stats();
    drop(c);
    let report = rt.shutdown();
    (per_shard, report.metrics.expect("metrics on by default"))
}

fn drive(rpc: RpcMode) -> (Vec<ShardStats>, piggyback_obs::Snapshot) {
    drive_with(rpc, 1, Duration::ZERO)
}

/// The store counters both planes must agree on, plus the serve-side op
/// counters recorded independently on each plane.
const DIFFERENTIAL_KEYS: [&str; 9] = [
    "store.updates",
    "store.queries",
    "store.events_inserted",
    "store.events_returned",
    "store.batches",
    "store.batch_ops",
    "serve.ops.shares",
    "serve.ops.queries",
    "serve.store_messages",
];

#[test]
fn stats_are_identical_across_direct_and_batched_planes() {
    let (direct, direct_snap) = drive(RpcMode::Direct);
    let (batched, batched_snap) = drive(RpcMode::Batched);
    assert_eq!(direct.len(), 4);
    assert_eq!(
        direct, batched,
        "per-shard Stats must match between the caller-runs and worker planes"
    );
    let touched: u64 = direct.iter().map(|s| s.updates + s.queries).sum();
    assert!(touched > 0, "the op stream never reached the store");
    // The end-of-run snapshots agree on every folded store counter.
    for key in DIFFERENTIAL_KEYS {
        assert_eq!(
            direct_snap.counter(key),
            batched_snap.counter(key),
            "{key} differs between planes"
        );
    }
    // The resilience and re-optimizer instruments ship in the default
    // catalog and stay zero/empty on an unreplicated, unmonitored,
    // churn-free run.
    for key in [
        "replica.lag",
        "health.suspect",
        "failover.count",
        "reopt.stream_passes",
        "reopt.budget_spent_ms",
        "reopt.hubs_admitted",
        "reopt.hubs_evicted",
    ] {
        assert!(
            direct_snap.get(key).is_some(),
            "instrument {key} missing from the catalog"
        );
    }
    assert_eq!(direct_snap.counter("failover.count"), 0);
    assert_eq!(
        direct_snap.counter("reopt.stream_passes"),
        0,
        "no churn, so no re-optimization may have run"
    );
}

#[test]
fn continuous_reopt_feeds_the_reopt_instruments() {
    // Continuous mode with the streaming re-optimizer: churn dirties the
    // graph, the manager fires back-to-back background sweeps under the
    // amortized budget, and every installed result folds its run stats
    // into the reopt.* instruments.
    let (g, r) = world();
    let schedule = by_name("chitchat-stream")
        .unwrap()
        .schedule(&Instance::new(&g, &r))
        .schedule;
    let rt = ServeRuntime::start(
        g,
        r.clone(),
        schedule,
        by_name("chitchat-stream").unwrap(),
        ServeConfig {
            shards: 4,
            workers: 2,
            reopt_mode: ReoptMode::Continuous,
            reopt_budget_frac: 1.0,
            ..Default::default()
        },
    );
    let mut c = rt.client();
    let mut trace = OpTrace::new(&r, 0.5, 7);
    for _ in 0..600 {
        c.apply_op(trace.next_op());
    }
    drop(c);
    let report = rt.shutdown();
    assert!(
        report.churn.reopts >= 1,
        "continuous mode never re-optimized under churn"
    );
    let snap = report.metrics.expect("metrics on by default");
    assert!(
        snap.counter("reopt.stream_passes") >= report.churn.reopts,
        "each streaming re-optimization runs at least one pass"
    );
    assert!(
        snap.counter("reopt.hubs_admitted") > 0,
        "the streaming sweeps admitted no hubs on a hub-rich graph"
    );
    // budget_spent_ms is wall-clock and may legitimately round to 0 on a
    // sub-millisecond sweep, so only the catalog pins it; hubs_evicted
    // stays 0 when the revisit buffer never overflows.
    assert!(snap.get("reopt.budget_spent_ms").is_some());
    assert_eq!(report.churn.live_staleness_violations, 0);
}

#[test]
fn heartbeats_leave_store_counters_untouched() {
    // The replication-1 differential guarantee: turning the failure
    // detector on adds Heartbeat wire requests, but those touch no shard
    // state and no counters — the data plane is byte-identical to the
    // pre-replication plane.
    let (plain, plain_snap) = drive_with(RpcMode::Batched, 1, Duration::ZERO);
    let (probed, probed_snap) = drive_with(RpcMode::Batched, 1, Duration::from_millis(2));
    assert_eq!(
        plain, probed,
        "heartbeat probes must not perturb per-shard stats"
    );
    for key in DIFFERENTIAL_KEYS {
        assert_eq!(
            plain_snap.counter(key),
            probed_snap.counter(key),
            "{key} differs once heartbeats are on"
        );
    }
    assert_eq!(
        probed_snap.counter("failover.count"),
        0,
        "no shard died, nothing may fail over"
    );
}

#[test]
fn rejoin_lifecycle_is_traced_in_the_event_log() {
    // Kill a replicated shard, restart it as a fresh empty process, and
    // require the whole rejoin lifecycle — rejoin detection, anti-entropy
    // catch-up batches, the staleness-gated readmit — to surface as
    // structured obs events with the shard and view counts attached.
    let (g, r) = world();
    let schedule = by_name("hybrid")
        .unwrap()
        .schedule(&Instance::new(&g, &r))
        .schedule;
    let rt = ServeRuntime::start(
        g,
        r.clone(),
        schedule,
        by_name("hybrid").unwrap(),
        ServeConfig {
            shards: 4,
            workers: 2,
            replication: 2,
            heartbeat_interval: Duration::from_millis(2),
            pull_cache_ttl: Duration::from_millis(50),
            faults: Some(FaultPlan::default()),
            ..Default::default()
        },
    );
    let mut c = rt.client();
    let mut trace = OpTrace::new(&r, 0.0, 23);
    for _ in 0..300 {
        c.apply_op(trace.next_op());
    }
    assert!(rt.kill_shard(1), "fault plan configured, kill must arm");
    let metrics = rt.metrics().expect("metrics on by default");
    let deadline = Instant::now() + Duration::from_secs(10);
    while metrics.snapshot().counter("failover.count") < 1 {
        for _ in 0..50 {
            c.apply_op(trace.next_op());
        }
        assert!(
            Instant::now() < deadline,
            "no failover within 10s of killing shard 1"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(rt.restart_shard(1), "a killed shard must restart");
    let has = |needle: &str| {
        metrics
            .events()
            .recent(256)
            .iter()
            .any(|e| e.to_string().contains(needle))
    };
    while !has("readmit shard=1") {
        for _ in 0..50 {
            c.apply_op(trace.next_op());
        }
        assert!(
            Instant::now() < deadline,
            "no readmit within 10s of restarting shard 1: {:?}",
            metrics.events().recent(256)
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    for needle in [
        "rejoin shard=1",
        "catch-up-batch shard=1",
        "readmit shard=1",
    ] {
        assert!(has(needle), "event log missing {needle:?}");
    }
    drop(c);
    let report = rt.shutdown();
    assert!(
        report.rejoins >= 1 && report.readmits >= 1,
        "report must count the rejoin + readmit cycle: {} rejoins, {} readmits",
        report.rejoins,
        report.readmits
    );
    assert!(report.catchup_ms > 0.0, "catch-up took real wall time");
    assert!(
        report.churn.zero_violations(),
        "bounded staleness violated across the rejoin: {:?}",
        report.churn.staleness_violation
    );
}

#[test]
fn stats_are_identical_across_planes_at_replication_two() {
    // With replicated writes the absolute counters change (each update
    // fans out to every replica slot), but the two production planes must
    // still agree with each other operation for operation.
    let (direct, direct_snap) = drive_with(RpcMode::Direct, 2, Duration::ZERO);
    let (batched, batched_snap) = drive_with(RpcMode::Batched, 2, Duration::ZERO);
    assert_eq!(
        direct, batched,
        "per-shard Stats must match between planes at replication 2"
    );
    for key in DIFFERENTIAL_KEYS {
        assert_eq!(
            direct_snap.counter(key),
            batched_snap.counter(key),
            "{key} differs between planes at replication 2"
        );
    }
    // Replication doubles the per-view write traffic vs a single-copy run
    // of the same trace: every view appears on exactly two replica slots,
    // so each update inserts its event twice. (`store.updates` counts
    // per-server groups, which coalesce differently, so the exact ×2 law
    // lives on the per-view counter.)
    let (_, single_snap) = drive(RpcMode::Batched);
    assert_eq!(
        direct_snap.counter("store.events_inserted"),
        2 * single_snap.counter("store.events_inserted"),
        "every view insert must land on both replica slots"
    );
}
