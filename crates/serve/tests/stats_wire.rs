//! Differential test for the `Stats` wire request: an identical operation
//! stream must produce **identical per-shard counters** whether the shard
//! plane runs caller-side (`RpcMode::Direct`) or through the batched
//! worker pool (`RpcMode::Batched`). Both planes route every request —
//! including the stats scrape itself — through the store's single
//! `handle_request`, so any divergence means one plane is doing different
//! work, not just reporting differently.

use piggyback_core::scheduler::{by_name, Instance};
use piggyback_graph::gen::{copying, CopyingConfig};
use piggyback_graph::CsrGraph;
use piggyback_serve::{RpcMode, ServeConfig, ServeRuntime};
use piggyback_store::server::ShardStats;
use piggyback_workload::{OpTrace, Rates};

fn world() -> (CsrGraph, Rates) {
    let g = copying(CopyingConfig {
        nodes: 200,
        follows_per_node: 5,
        copy_prob: 0.7,
        seed: 3,
    });
    let r = Rates::log_degree(&g, 5.0);
    (g, r)
}

fn drive(rpc: RpcMode) -> (Vec<ShardStats>, piggyback_obs::Snapshot) {
    let (g, r) = world();
    let schedule = by_name("hybrid")
        .unwrap()
        .schedule(&Instance::new(&g, &r))
        .schedule;
    let rt = ServeRuntime::start(
        g,
        r.clone(),
        schedule,
        by_name("hybrid").unwrap(),
        ServeConfig {
            shards: 4,
            workers: 2,
            rpc,
            ..Default::default()
        },
    );
    let mut c = rt.client();
    // Deterministic share/query stream (no churn: the store counters must
    // be a pure function of the ops, not of churn-thread interleaving).
    let mut trace = OpTrace::new(&r, 0.0, 99);
    for _ in 0..500 {
        c.apply_op(trace.next_op());
    }
    let per_shard = rt.shard_stats();
    drop(c);
    let report = rt.shutdown();
    (per_shard, report.metrics.expect("metrics on by default"))
}

#[test]
fn stats_are_identical_across_direct_and_batched_planes() {
    let (direct, direct_snap) = drive(RpcMode::Direct);
    let (batched, batched_snap) = drive(RpcMode::Batched);
    assert_eq!(direct.len(), 4);
    assert_eq!(
        direct, batched,
        "per-shard Stats must match between the caller-runs and worker planes"
    );
    let touched: u64 = direct.iter().map(|s| s.updates + s.queries).sum();
    assert!(touched > 0, "the op stream never reached the store");
    // The end-of-run snapshots agree on every folded store counter, and on
    // the serve-side op counters recorded independently on each plane.
    for key in [
        "store.updates",
        "store.queries",
        "store.events_inserted",
        "store.events_returned",
        "store.batches",
        "store.batch_ops",
        "serve.ops.shares",
        "serve.ops.queries",
        "serve.store_messages",
    ] {
        assert_eq!(
            direct_snap.counter(key),
            batched_snap.counter(key),
            "{key} differs between planes"
        );
    }
}
