//! End-to-end failover: kill a shard under live load and require the
//! failure detector to notice, the failover controller to re-point the
//! dead primary at its surviving replica, and the run to finish with the
//! paper's bounded-staleness invariant intact.

use std::time::{Duration, Instant};

use piggyback_core::scheduler::{by_name, Instance};
use piggyback_graph::gen::{copying, CopyingConfig};
use piggyback_serve::{ServeConfig, ServeRuntime};
use piggyback_store::FaultPlan;
use piggyback_workload::{OpTrace, Rates};

#[test]
fn killed_shard_fails_over_and_queries_keep_answering() {
    let g = copying(CopyingConfig {
        nodes: 400,
        follows_per_node: 5,
        copy_prob: 0.7,
        seed: 9,
    });
    let r = Rates::log_degree(&g, 5.0);
    let schedule = by_name("hybrid")
        .unwrap()
        .schedule(&Instance::new(&g, &r))
        .schedule;
    let rt = ServeRuntime::start(
        g,
        r.clone(),
        schedule,
        by_name("hybrid").unwrap(),
        ServeConfig {
            shards: 8,
            workers: 2,
            replication: 2,
            heartbeat_interval: Duration::from_millis(2),
            pull_cache_ttl: Duration::from_millis(50),
            // A zero fault plan: no drops/duplicates/delays, but the
            // injector's kill switches are armed.
            faults: Some(FaultPlan::default()),
            ..Default::default()
        },
    );
    let mut c = rt.client();
    let mut trace = OpTrace::new(&r, 0.01, 17);
    for _ in 0..300 {
        c.apply_op(trace.next_op());
    }
    assert!(rt.kill_shard(3), "fault plan configured, kill must arm");

    // Keep load flowing while the detector confirms the death; the
    // controller must publish a failover epoch within a few heartbeats.
    let deadline = Instant::now() + Duration::from_secs(10);
    let metrics = rt.metrics().expect("metrics on by default");
    loop {
        for _ in 0..50 {
            c.apply_op(trace.next_op());
        }
        if metrics.snapshot().counter("failover.count") >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no failover within 10s of killing shard 3"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // Post-failover: the data plane must still answer everything —
    // including reads that used to be homed on the dead shard.
    for _ in 0..300 {
        c.apply_op(trace.next_op());
    }
    let events = metrics.events().recent(64);
    assert!(
        events
            .iter()
            .any(|e| e.to_string().contains("failover shard=3")),
        "event log must record the failover: {events:?}"
    );

    drop(c);
    let report = rt.shutdown();
    assert_eq!(report.replication, 2);
    assert!(report.failovers >= 1, "report must count the failover");
    assert!(
        report.churn.users_failed_over > 0,
        "shard 3 hosted views that must have moved"
    );
    assert!(
        report.unavailable_ms > 0.0,
        "the detection window is real wall time"
    );
    assert!(
        report.churn.zero_violations(),
        "bounded staleness violated across the failover: {:?}",
        report.churn.staleness_violation
    );
}
