//! End-to-end online serving: interleaved share/query/follow/unfollow
//! load with live re-optimization, validated for bounded staleness.

use std::time::Duration;

use piggyback_core::scheduler::{by_name, Instance};
use piggyback_graph::gen::{copying, CopyingConfig};
use piggyback_graph::CsrGraph;
use piggyback_serve::{run_harness, Arrival, HarnessConfig, ServeConfig, ServeRuntime};
use piggyback_workload::Rates;

fn world(nodes: usize, seed: u64) -> (CsrGraph, Rates) {
    let g = copying(CopyingConfig {
        nodes,
        follows_per_node: 6,
        copy_prob: 0.8,
        seed,
    });
    let r = Rates::log_degree(&g, 5.0);
    (g, r)
}

/// Heavy follow pressure with a hair-trigger threshold must fire at least
/// one background re-optimization, and the serving path must stay
/// feasible throughout (zero staleness violations post-run).
#[test]
fn churn_triggers_background_reoptimization() {
    let (g, r) = world(400, 9);
    let opt = by_name("parallelnosy").unwrap();
    let schedule = opt.schedule(&Instance::new(&g, &r)).schedule;
    let rt = ServeRuntime::start(
        g.clone(),
        r.clone(),
        schedule,
        by_name("hybrid").unwrap(),
        ServeConfig {
            shards: 4,
            workers: 2,
            reopt_threshold: 0.01,
            ..Default::default()
        },
    );
    let mut c = rt.client();
    let n = g.node_count() as u32;
    // Deterministic follow storm: new edges cost hybrid price each, so the
    // overlay delta crosses 1% of base quickly.
    let mut applied = 0;
    for i in 0..2_000u32 {
        let u = (i * 7919) % n;
        let v = (i * 104_729 + 1) % n;
        if u != v && c.follow(u, v) {
            applied += 1;
        }
        // Keep the read/write path busy between mutations.
        if i % 16 == 0 {
            c.share(u % n);
            c.query(v % n);
        }
    }
    assert!(applied > 100, "follow storm barely applied: {applied}");
    drop(c);
    let report = rt.shutdown();
    assert_eq!(report.churn.follows_applied, applied);
    assert!(
        report.churn.reopts >= 1,
        "no re-optimization fired despite threshold 0.01 and {applied} follows"
    );
    assert!(
        report.churn.zero_violations(),
        "staleness violated: {:?}",
        report.churn.staleness_violation
    );
    // The re-optimized schedule starts from a fresh (higher) base cost
    // that reflects the grown graph.
    assert!(report.churn.base_cost > 0.0);
    assert!(report.final_epoch as u64 > applied);
}

/// The full harness on a mid-size graph: concurrent clients, churn, the
/// pull cache, and open/closed arrival generators all compose, and the
/// post-run validation is clean.
#[test]
fn harness_sustains_concurrent_churn_with_cache() {
    let (g, r) = world(1_000, 4);
    let opt = by_name("chitchat").unwrap();
    let schedule = opt.schedule(&Instance::new(&g, &r)).schedule;
    let report = run_harness(
        &g,
        &r,
        schedule,
        by_name("hybrid").unwrap(),
        ServeConfig {
            shards: 8,
            workers: 2,
            pull_cache_ttl: Duration::from_millis(50),
            reopt_threshold: 0.05,
            ..Default::default()
        },
        &HarnessConfig {
            clients: 3,
            duration: Duration::from_millis(400),
            churn_ratio: 0.1,
            arrival: Arrival::Closed,
            seed: 21,
            stats_interval: Some(Duration::from_millis(100)),
            chaos: None,
        },
    );
    assert!(report.ops > 0);
    assert!(report.follows + report.unfollows > 0, "no churn exercised");
    assert!(report.serve.churn.zero_violations());
    assert!(
        report.serve.final_epoch >= report.serve.churn.follows_applied,
        "every applied mutation publishes an epoch"
    );
    // The cache saw traffic (hits are load-dependent, misses are certain).
    assert!(report.serve.cache_hits + report.serve.cache_misses > 0);
    // The live metrics capture agrees with the harness's own tallies:
    // shares/queries count issued ops, follows count *applied* mutations.
    let snap = report
        .serve
        .metrics
        .as_ref()
        .expect("metrics on by default");
    assert_eq!(snap.counter("serve.ops.shares"), report.shares);
    assert_eq!(snap.counter("serve.ops.queries"), report.queries);
    assert_eq!(
        snap.counter("serve.ops.follows"),
        report.serve.churn.follows_applied
    );
    assert_eq!(snap.counter("churn.staleness_violations"), 0);
    assert!(snap.counter("store.updates") > 0, "wire scrape folded in");
    // Percentiles are well-formed.
    assert!(report.quantile_ms(0.5) <= report.quantile_ms(0.95));
    assert!(report.quantile_ms(0.95) <= report.quantile_ms(0.99));
}

/// The paper's throughput ordering survives the online path: with enough
/// servers that batching no longer hides fan-out (Figure 6's right side),
/// the same live workload costs strictly fewer store messages under a
/// piggybacking schedule than under push-all.
#[test]
fn piggybacking_reduces_online_messages() {
    let (g, r) = world(600, 2);
    let mk = |name: &str| {
        let opt = by_name(name).unwrap();
        opt.schedule(&Instance::new(&g, &r)).schedule
    };
    let cfg = ServeConfig {
        shards: 256,
        workers: 2,
        ..Default::default()
    };
    let load = HarnessConfig {
        clients: 1,
        duration: Duration::from_millis(300),
        churn_ratio: 0.0,
        arrival: Arrival::Closed,
        seed: 33,
        stats_interval: None,
        chaos: None,
    };
    let run = |name: &str| run_harness(&g, &r, mk(name), by_name("hybrid").unwrap(), cfg, &load);
    let push_all = run("push-all");
    let chitchat = run("chitchat");
    let pa = push_all.messages as f64 / push_all.ops.max(1) as f64;
    let cc = chitchat.messages as f64 / chitchat.ops.max(1) as f64;
    assert!(
        cc < pa,
        "chitchat should touch fewer servers per op: {cc:.2} vs push-all {pa:.2}"
    );
}
