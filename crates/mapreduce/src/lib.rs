//! A minimal, deterministic, in-memory MapReduce engine.
//!
//! The paper implements PARALLELNOSY as a sequence of Hadoop MapReduce jobs
//! (§3.2, "Implementing PARALLELNOSY with MapReduce"). We do not have a
//! Hadoop cluster, but the *semantics* the algorithm relies on — a parallel
//! map phase, a shuffle that groups emitted pairs by key, and a parallel
//! reduce phase with one invocation per key — are faithfully reproduced by
//! this engine on a thread pool. `piggyback-core` runs PARALLELNOSY both
//! directly threaded and through this engine and asserts the schedules are
//! identical.
//!
//! Determinism: reducers see their values in emission order (stable sort by
//! key), and results are returned in ascending key order regardless of the
//! number of workers.
//!
//! # Example
//!
//! ```
//! use piggyback_mapreduce::MapReduce;
//!
//! // Word count over numbers: key = n % 3, value = n.
//! let engine = MapReduce::new(4);
//! let out = engine.run(
//!     (0u32..100).collect(),
//!     |&n| vec![(n % 3, n)],
//!     |key, values| (key, values.len()),
//! );
//! assert_eq!(out, vec![(0, 34), (1, 33), (2, 33)]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Execution statistics of the most recent job (for tests and diagnostics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Number of map invocations.
    pub map_calls: usize,
    /// Number of key/value pairs emitted by mappers.
    pub pairs_emitted: usize,
    /// Number of distinct keys (= reduce invocations).
    pub reduce_groups: usize,
}

/// A tiny in-memory MapReduce engine with a fixed worker count.
#[derive(Clone, Debug)]
pub struct MapReduce {
    workers: usize,
}

impl Default for MapReduce {
    /// Engine sized to the available parallelism (at least 2 workers).
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .max(2);
        MapReduce::new(workers)
    }
}

impl MapReduce {
    /// Engine with exactly `workers` worker threads per phase.
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        MapReduce { workers }
    }

    /// Number of worker threads used per phase.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs a full map → shuffle → reduce job and returns the reduce outputs
    /// in ascending key order.
    ///
    /// * `mapper` is invoked once per input and returns emitted `(key, value)`
    ///   pairs.
    /// * `reducer` is invoked once per distinct key with all values emitted
    ///   for it, in emission order (ordered first by input index, then by
    ///   emission position — exactly what a stable shuffle provides).
    pub fn run<I, K, V, R, M, F>(&self, inputs: Vec<I>, mapper: M, reducer: F) -> Vec<R>
    where
        I: Send,
        K: Ord + Send,
        V: Send,
        R: Send,
        M: Fn(&I) -> Vec<(K, V)> + Sync,
        F: Fn(K, Vec<V>) -> R + Sync,
    {
        self.run_with_stats(inputs, mapper, reducer).0
    }

    /// Like [`MapReduce::run`] but also returns [`JobStats`].
    pub fn run_with_stats<I, K, V, R, M, F>(
        &self,
        inputs: Vec<I>,
        mapper: M,
        reducer: F,
    ) -> (Vec<R>, JobStats)
    where
        I: Send,
        K: Ord + Send,
        V: Send,
        R: Send,
        M: Fn(&I) -> Vec<(K, V)> + Sync,
        F: Fn(K, Vec<V>) -> R + Sync,
    {
        let map_calls = inputs.len();
        // ---- map phase ----------------------------------------------------
        // Each worker maps a contiguous chunk; chunk outputs are concatenated
        // in input order so the shuffle below is stable w.r.t. input order.
        let chunk_outputs = self.parallel_map_chunks(inputs, &mapper);
        let mut pairs: Vec<(K, V)> = Vec::new();
        for chunk in chunk_outputs {
            pairs.extend(chunk);
        }
        let pairs_emitted = pairs.len();

        // ---- shuffle ------------------------------------------------------
        // Stable sort by key preserves emission order within a key group.
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        let mut groups: Vec<(K, Vec<V>)> = Vec::new();
        for (k, v) in pairs {
            match groups.last_mut() {
                Some((gk, gv)) if *gk == k => gv.push(v),
                _ => groups.push((k, vec![v])),
            }
        }
        let reduce_groups = groups.len();

        // ---- reduce phase ---------------------------------------------------
        let results = self.parallel_reduce(groups, &reducer);
        (
            results,
            JobStats {
                map_calls,
                pairs_emitted,
                reduce_groups,
            },
        )
    }

    /// Parallel map without shuffle/reduce: applies `f` to every input and
    /// returns outputs in input order.
    pub fn map_only<I, O, F>(&self, inputs: Vec<I>, f: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(&I) -> O + Sync,
    {
        let chunks = self.parallel_map_chunks(inputs, &|i: &I| vec![f(i)]);
        chunks.into_iter().flatten().collect()
    }

    /// Maps chunks in parallel, returning one output vec per chunk, in chunk
    /// order.
    fn parallel_map_chunks<I, O, M>(&self, inputs: Vec<I>, mapper: &M) -> Vec<Vec<O>>
    where
        I: Send,
        O: Send,
        M: Fn(&I) -> Vec<O> + Sync,
    {
        let n = inputs.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(n);
        let chunk_size = n.div_ceil(workers);
        let chunks: Vec<Vec<I>> = {
            let mut out = Vec::with_capacity(workers);
            let mut it = inputs.into_iter();
            loop {
                let chunk: Vec<I> = it.by_ref().take(chunk_size).collect();
                if chunk.is_empty() {
                    break;
                }
                out.push(chunk);
            }
            out
        };
        let num_chunks = chunks.len();
        let slots: Vec<Mutex<Vec<O>>> = (0..num_chunks).map(|_| Mutex::new(Vec::new())).collect();
        crossbeam::scope(|s| {
            for (idx, chunk) in chunks.into_iter().enumerate() {
                let slot = &slots[idx];
                let mapper = &mapper;
                s.spawn(move |_| {
                    let mut local = Vec::new();
                    for item in &chunk {
                        local.extend(mapper(item));
                    }
                    *slot.lock().unwrap() = local;
                });
            }
        })
        .expect("map worker panicked");
        slots.into_iter().map(|m| m.into_inner().unwrap()).collect()
    }

    /// Reduces key groups in parallel, preserving group (key) order.
    fn parallel_reduce<K, V, R, F>(&self, groups: Vec<(K, Vec<V>)>, reducer: &F) -> Vec<R>
    where
        K: Send,
        V: Send,
        R: Send,
        F: Fn(K, Vec<V>) -> R + Sync,
    {
        let n = groups.len();
        if n == 0 {
            return Vec::new();
        }
        // Work-stealing over an index counter keeps load balanced even when
        // group sizes are skewed (hot keys are common in social graphs).
        type Slot<K, V> = Mutex<Option<(K, Vec<V>)>>;
        let items: Vec<Slot<K, V>> = groups.into_iter().map(|g| Mutex::new(Some(g))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        crossbeam::scope(|s| {
            for _ in 0..self.workers.min(n) {
                let items = &items;
                let results = &results;
                let cursor = &cursor;
                s.spawn(move |_| loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let (k, vs) = items[idx].lock().unwrap().take().expect("taken twice");
                    *results[idx].lock().unwrap() = Some(reducer(k, vs));
                });
            }
        })
        .expect("reduce worker panicked");
        results
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("missing reduce result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_count_shape() {
        let engine = MapReduce::new(3);
        let (out, stats) = engine.run_with_stats(
            vec!["a b", "b c", "c c"],
            |line| line.split(' ').map(|w| (w.to_string(), 1u32)).collect(),
            |k, vs| (k, vs.iter().sum::<u32>()),
        );
        assert_eq!(
            out,
            vec![
                ("a".to_string(), 1),
                ("b".to_string(), 2),
                ("c".to_string(), 3)
            ]
        );
        assert_eq!(stats.map_calls, 3);
        assert_eq!(stats.pairs_emitted, 6);
        assert_eq!(stats.reduce_groups, 3);
    }

    #[test]
    fn values_arrive_in_emission_order() {
        let engine = MapReduce::new(4);
        // All inputs emit to the same key; values must arrive in input order.
        let out = engine.run((0u32..1000).collect(), |&n| vec![((), n)], |_, vs| vs);
        let expected: Vec<u32> = (0..1000).collect();
        assert_eq!(out, vec![expected]);
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let inputs: Vec<u64> = (0..500).collect();
        let run = |workers| {
            MapReduce::new(workers).run(
                inputs.clone(),
                |&n| vec![(n % 7, n * n)],
                |k, vs| (k, vs.iter().sum::<u64>()),
            )
        };
        let single = run(1);
        for w in [2, 3, 8] {
            assert_eq!(run(w), single, "workers={w} diverged");
        }
    }

    #[test]
    fn empty_input() {
        let engine = MapReduce::new(2);
        let out: Vec<u32> = engine.run(Vec::<u32>::new(), |&n| vec![(n, n)], |_, _| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn mapper_emitting_nothing() {
        let engine = MapReduce::new(2);
        let out: Vec<u32> = engine.run(vec![1, 2, 3], |_| Vec::<(u32, u32)>::new(), |_, _| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn map_only_preserves_order() {
        let engine = MapReduce::new(5);
        let out = engine.map_only((0u32..100).collect(), |&n| n * 2);
        assert_eq!(out, (0..100).map(|n| n * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn skewed_groups_balance() {
        // One giant key plus many tiny ones must still terminate quickly and
        // produce sorted output.
        let engine = MapReduce::new(4);
        let out = engine.run(
            (0u32..10_000).collect(),
            |&n| {
                if n % 2 == 0 {
                    vec![(0u32, n)]
                } else {
                    vec![(n, n)]
                }
            },
            |k, vs| (k, vs.len()),
        );
        assert_eq!(out[0], (0, 5000));
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn default_engine_has_workers() {
        assert!(MapReduce::default().workers() >= 2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        MapReduce::new(0);
    }
}
