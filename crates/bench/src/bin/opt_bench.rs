//! Optimizer benchmark suite: wall-clock, oracle-call, and memory accounting
//! for every schedule optimizer across graph models, sizes, and thread
//! counts, emitting machine-readable JSON (`BENCH_opt.json`).
//!
//! The headline row pair is `chitchat` vs `chitchat-ref`: the optimized
//! CHITCHAT (persistent-pool oracle fan-out, closed-form bound seeding,
//! allocation-free bucket peeling, cached edge costs, provably-inert
//! recomputation skipping) against the preserved pre-optimization
//! sequential implementation. Both drive the same argmin greedy; exact ties
//! between equally-priced candidates may break differently (the bench
//! asserts costs within 0.5% and reports the delta — observed ~1e-5
//! relative at the 100k scale), so `speedup_vs_ref` measures execution
//! efficiency, not schedule quality.
//!
//! ```text
//! cargo run --release -p piggyback-bench --bin opt_bench -- [--smoke] \
//!     [--nodes <n>[,<n>...]] [--threads <t>[,<t>...]] [--out <file>]
//! ```
//!
//! **Every row runs in its own subprocess** (the binary re-execs itself
//! with `--one <model> <nodes> <algorithm> <threads>`): Linux's `VmHWM` is
//! a process-lifetime high-water mark, so measuring rows in one process
//! makes every row after the largest read the same stale peak. One process
//! per row gives each measurement its own accurate peak — `peak_rss_kb`
//! is the true footprint of generating that world and running that
//! algorithm, nothing else.
//!
//! `--smoke` shrinks everything for CI (a couple of seconds); the default
//! configuration runs up to a 100k-node / ~1M-edge Flickr-like graph, plus
//! a denser Twitter-like mid-size instance. Sizes past 50k nodes switch to
//! a reduced matrix (no sequential reference — one 100k row takes ~28
//! minutes — and endpoint thread counts only), and past 1M nodes only the
//! hybrid baseline and `chitchat-stream` run: the streaming sweep is what
//! makes the committed 2.2M and 10M-node rows affordable at all. Where
//! both run, the parent asserts the streaming cost within 5% of batch
//! CHITCHAT.

use std::process::Command;
use std::time::Instant;

use piggyback_bench::REFERENCE_RW_RATIO;
use piggyback_core::scheduler::{by_name_with_threads, Instance};
use piggyback_core::ChitChat;
use piggyback_graph::gen;
use piggyback_workload::Rates;

/// Above this node count the sequential reference is skipped (its eager
/// serial execution is ~4x the optimized single-thread wall and grows
/// superlinearly — ~28 minutes for one 100k row) and only endpoint thread
/// counts run. Cost equality with the reference is still asserted at every
/// size below the cutoff.
const FULL_MATRIX_MAX_NODES: usize = 50_000;

/// Above this node count only the hybrid baseline and the streaming
/// CHITCHAT run: the batch optimizers' wall time at 2.2M+ nodes is exactly
/// the cost the streaming path exists to avoid.
const BATCH_MAX_NODES: usize = 1_000_000;

struct Args {
    smoke: bool,
    /// Node counts for the Flickr-like sweep (the Twitter-like instance
    /// uses the smallest entry: denser graphs, same edge ballpark).
    nodes: Vec<usize>,
    threads: Vec<usize>,
    out: Option<String>,
}

fn parse_list(v: &str, flag: &str) -> Vec<usize> {
    v.split(',')
        .map(|x| {
            x.parse()
                .unwrap_or_else(|_| panic!("invalid {flag}: {x:?}"))
        })
        .collect()
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let (mut nodes, mut threads, mut out) = (None, None, None);
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--nodes" => {
                nodes = Some(parse_list(&argv[i + 1], "--nodes"));
                i += 2;
            }
            "--threads" => {
                threads = Some(parse_list(&argv[i + 1], "--threads"));
                i += 2;
            }
            "--out" => {
                out = Some(argv[i + 1].clone());
                i += 2;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    Args {
        smoke,
        nodes: nodes.unwrap_or(if smoke {
            vec![2_000]
        } else {
            vec![10_000, 100_000, 2_200_000, 10_000_000]
        }),
        threads: threads.unwrap_or(if smoke { vec![1, 2] } else { vec![1, 2, 4, 8] }),
        out,
    }
}

/// The process peak-RSS high-water mark from /proc (kB), 0 where
/// unavailable. Meaningful because each row runs in its own process.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|v| v.parse::<u64>().ok())
            })
        })
        .unwrap_or(0)
}

#[derive(Clone)]
struct Row {
    model: String,
    nodes: usize,
    edges: usize,
    algorithm: String,
    threads: usize,
    wall_ms: f64,
    cost: f64,
    vs_hybrid: f64,
    oracle_calls: usize,
    iterations: usize,
    hubs: usize,
    peak_rss_kb: u64,
    fanout_busy_ms: f64,
    fanout_capacity_ms: f64,
    speedup_vs_ref: Option<f64>,
}

impl Row {
    /// Fraction of fan-out capacity spent busy; 1.0 for rows without any
    /// fan-out sections (the per-thread utilization the CI gate checks).
    fn busy_frac(&self) -> f64 {
        if self.fanout_capacity_ms <= 0.0 {
            1.0
        } else {
            (self.fanout_busy_ms / self.fanout_capacity_ms).min(1.0)
        }
    }

    fn json(&self) -> String {
        let speedup = match self.speedup_vs_ref {
            Some(s) => format!(", \"speedup_vs_ref\": {s:.3}"),
            None => String::new(),
        };
        format!(
            concat!(
                "    {{\"model\": \"{}\", \"nodes\": {}, \"edges\": {}, ",
                "\"algorithm\": \"{}\", \"threads\": {}, \"wall_ms\": {:.1}, ",
                "\"cost\": {:.2}, \"vs_hybrid\": {:.4}, \"oracle_calls\": {}, ",
                "\"iterations\": {}, \"hubs\": {}, \"peak_rss_kb\": {}, ",
                "\"fanout_busy_ms\": {:.1}, \"fanout_capacity_ms\": {:.1}, ",
                "\"busy_frac\": {:.3}{}}}"
            ),
            self.model,
            self.nodes,
            self.edges,
            self.algorithm,
            self.threads,
            self.wall_ms,
            self.cost,
            self.vs_hybrid,
            self.oracle_calls,
            self.iterations,
            self.hubs,
            self.peak_rss_kb,
            self.fanout_busy_ms,
            self.fanout_capacity_ms,
            self.busy_frac(),
            speedup
        )
    }

    /// The child → parent wire format: one `key=value` per line. Avoids a
    /// JSON parser dependency; the parent re-serializes.
    fn to_wire(&self) -> String {
        format!(
            "model={}\nnodes={}\nedges={}\nalgorithm={}\nthreads={}\nwall_ms={}\ncost={}\nvs_hybrid={}\noracle_calls={}\niterations={}\nhubs={}\npeak_rss_kb={}\nfanout_busy_ms={}\nfanout_capacity_ms={}\n",
            self.model,
            self.nodes,
            self.edges,
            self.algorithm,
            self.threads,
            self.wall_ms,
            self.cost,
            self.vs_hybrid,
            self.oracle_calls,
            self.iterations,
            self.hubs,
            self.peak_rss_kb,
            self.fanout_busy_ms,
            self.fanout_capacity_ms,
        )
    }

    fn from_wire(text: &str) -> Row {
        let get = |key: &str| -> &str {
            text.lines()
                .find_map(|l| l.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
                .unwrap_or_else(|| panic!("child row missing {key:?} in {text:?}"))
        };
        Row {
            model: get("model").to_string(),
            nodes: get("nodes").parse().unwrap(),
            edges: get("edges").parse().unwrap(),
            algorithm: get("algorithm").to_string(),
            threads: get("threads").parse().unwrap(),
            wall_ms: get("wall_ms").parse().unwrap(),
            cost: get("cost").parse().unwrap(),
            vs_hybrid: get("vs_hybrid").parse().unwrap(),
            oracle_calls: get("oracle_calls").parse().unwrap(),
            iterations: get("iterations").parse().unwrap(),
            hubs: get("hubs").parse().unwrap(),
            peak_rss_kb: get("peak_rss_kb").parse().unwrap(),
            fanout_busy_ms: get("fanout_busy_ms").parse().unwrap(),
            fanout_capacity_ms: get("fanout_capacity_ms").parse().unwrap(),
            speedup_vs_ref: None,
        }
    }
}

fn build_world(model: &str, n: usize) -> (piggyback_graph::CsrGraph, Rates) {
    let g = match model {
        "flickr" => gen::flickr_like(n, 42),
        "twitter" => gen::twitter_like(n, 42),
        other => panic!("unknown model {other:?}"),
    };
    let rates = Rates::log_degree(&g, REFERENCE_RW_RATIO);
    (g, rates)
}

/// Child mode: generate the world, run one algorithm, print the row in
/// wire format. Runs in a process of its own so `peak_rss_kb` is exact.
fn run_child(model: &str, n: usize, algorithm: &str, threads: usize) {
    let (g, rates) = build_world(model, n);
    let inst = Instance::new(&g, &rates);

    // The hybrid baseline cost, computed inline: O(m), negligible next to
    // any optimizer, and it keeps the child self-contained.
    let hybrid_cost = {
        let sched = piggyback_core::hybrid_schedule(&g, &rates);
        piggyback_core::schedule_cost(&g, &rates, &sched)
    };

    let (wall_ms, cost, oracle_calls, iterations, hubs, busy_ms, capacity_ms) =
        if algorithm == "hybrid" {
            let start = Instant::now();
            let sched = piggyback_core::hybrid_schedule(&g, &rates);
            let wall = start.elapsed().as_secs_f64() * 1e3;
            let cost = piggyback_core::schedule_cost(&g, &rates, &sched);
            (wall, cost, 0, 0, 0, 0.0, 0.0)
        } else if algorithm == "chitchat-ref" {
            // The pre-optimization execution profile: serial, eager
            // recomputation after every selection, exact oracle seeding,
            // allocating heap-peel oracle, per-probe singleton costs.
            let start = Instant::now();
            let res = ChitChat::default().run_reference(&g, &rates);
            let wall = start.elapsed().as_secs_f64() * 1e3;
            let cost = piggyback_core::schedule_cost(&g, &rates, &res.schedule);
            (
                wall,
                cost,
                res.oracle_calls,
                0,
                res.hub_selections,
                0.0,
                0.0,
            )
        } else {
            let opt = by_name_with_threads(algorithm, threads).expect("registered scheduler");
            let out = opt.schedule(&inst);
            (
                out.stats.wall_time.as_secs_f64() * 1e3,
                out.stats.cost,
                out.stats.oracle_calls,
                out.stats.iterations,
                out.stats.hubs_applied,
                out.stats.fanout_busy_ms,
                out.stats.fanout_capacity_ms,
            )
        };

    let row = Row {
        model: model.to_string(),
        nodes: g.node_count(),
        edges: g.edge_count(),
        algorithm: algorithm.to_string(),
        threads,
        wall_ms,
        cost,
        vs_hybrid: hybrid_cost / cost,
        oracle_calls,
        iterations,
        hubs,
        peak_rss_kb: peak_rss_kb(),
        fanout_busy_ms: busy_ms,
        fanout_capacity_ms: capacity_ms,
        speedup_vs_ref: None,
    };
    print!("{}", row.to_wire());
}

/// Parent side: re-exec ourselves for one row and parse the result.
fn spawn_row(model: &str, n: usize, algorithm: &str, threads: usize) -> Row {
    let exe = std::env::current_exe().expect("current_exe");
    let out = Command::new(exe)
        .args([
            "--one",
            model,
            &n.to_string(),
            algorithm,
            &threads.to_string(),
        ])
        .output()
        .expect("spawn benchmark child");
    assert!(
        out.status.success(),
        "child {model}/{n}/{algorithm}/t{threads} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let row = Row::from_wire(&String::from_utf8_lossy(&out.stdout));
    eprintln!(
        "#   {:<16} t={:<2} {:>10.1} ms  cost {:>12.1}  ({:.3}x vs hybrid)  rss {} kB  busy {:.2}",
        row.algorithm,
        row.threads,
        row.wall_ms,
        row.cost,
        row.vs_hybrid,
        row.peak_rss_kb,
        row.busy_frac(),
    );
    row
}

fn main() {
    // Child mode: `--one <model> <nodes> <algorithm> <threads>`.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("--one") {
        assert_eq!(argv.len(), 5, "--one <model> <nodes> <algorithm> <threads>");
        run_child(
            &argv[1],
            argv[2].parse().expect("nodes"),
            &argv[3],
            argv[4].parse().expect("threads"),
        );
        return;
    }

    let args = parse_args();
    let mut rows: Vec<Row> = Vec::new();
    let mut worlds: Vec<(&'static str, usize)> =
        args.nodes.iter().map(|&n| ("flickr", n)).collect();
    // One denser Twitter-like instance at the smallest size (its edge count
    // roughly doubles the Flickr preset's).
    worlds.push(("twitter", args.nodes[0]));

    for (model, n) in worlds {
        eprintln!("# opt_bench: {model} {n} nodes");
        let full_matrix = n <= FULL_MATRIX_MAX_NODES;
        let batch = n <= BATCH_MAX_NODES;
        // Past the full-matrix limit, only the endpoint thread counts run
        // (the scaling curve's interior adds hours without information).
        let endpoint_threads: Vec<usize> = {
            let lo = args.threads.iter().copied().min().unwrap_or(1);
            let hi = args.threads.iter().copied().max().unwrap_or(1);
            if lo == hi {
                vec![lo]
            } else {
                vec![lo, hi]
            }
        };
        let chitchat_threads = if full_matrix {
            args.threads.clone()
        } else {
            endpoint_threads.clone()
        };

        rows.push(spawn_row(model, n, "hybrid", 1));

        let ref_cost = if full_matrix && batch {
            let ref_row = spawn_row(model, n, "chitchat-ref", 1);
            let (wall, cost) = (ref_row.wall_ms, ref_row.cost);
            rows.push(ref_row);
            Some((wall, cost))
        } else {
            None
        };

        let mut batch_chitchat_cost = None;
        if batch {
            for &t in &chitchat_threads {
                let mut row = spawn_row(model, n, "chitchat", t);
                if let Some((ref_wall, ref_cost)) = ref_cost {
                    row.speedup_vs_ref = Some(ref_wall / row.wall_ms);
                    // Same argmin greedy; exact ties between equally-priced
                    // candidates may break differently, so enforce equality
                    // to 0.5% (observed deltas are ~1e-5 relative at scale).
                    assert!(
                        (row.cost - ref_cost).abs() <= 5e-3 * ref_cost,
                        "{model}/{n}: optimized chitchat diverged from the reference greedy ({} vs {ref_cost})",
                        row.cost
                    );
                }
                batch_chitchat_cost = Some(row.cost);
                rows.push(row);
            }
        }
        for &t in &chitchat_threads {
            let row = spawn_row(model, n, "chitchat-stream", t);
            if let Some(cb) = batch_chitchat_cost {
                // The streaming differential gate: one ordered sweep plus
                // short refinement must land within 5% of the batch greedy.
                assert!(
                    row.cost <= cb * 1.05,
                    "{model}/{n}: chitchat-stream cost {} more than 5% above batch {cb}",
                    row.cost
                );
            }
            rows.push(row);
        }
        if batch {
            let sharded_threads = if full_matrix {
                args.threads.clone()
            } else {
                vec![*endpoint_threads.last().expect("non-empty threads")]
            };
            for &t in &sharded_threads {
                rows.push(spawn_row(model, n, "sharded-chitchat", t));
            }
            for &t in &chitchat_threads {
                rows.push(spawn_row(model, n, "parallelnosy", t));
            }
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"opt\",\n  \"smoke\": {},\n  \"rw_ratio\": {},\n  \"seed\": 42,\n  \"results\": [\n{}\n  ]\n}}",
        args.smoke,
        REFERENCE_RW_RATIO,
        rows.iter().map(Row::json).collect::<Vec<_>>().join(",\n")
    );
    println!("{json}");
    if let Some(path) = &args.out {
        std::fs::write(path, format!("{json}\n")).expect("write --out file");
        eprintln!("# wrote {path}");
    }

    // Headline: best chitchat speedup vs the sequential baseline per world.
    for (model, n, ref_cost) in rows
        .iter()
        .filter(|r| r.algorithm == "chitchat-ref")
        .map(|r| (r.model.clone(), r.nodes, r.cost))
        .collect::<Vec<_>>()
    {
        let best = rows
            .iter()
            .filter(|r| r.model == model && r.nodes == n && r.algorithm == "chitchat")
            .filter_map(|r| r.speedup_vs_ref.map(|s| (s, r.threads, r.cost)))
            .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        if let Some((s, t, cost)) = best {
            eprintln!(
                "# {model}/{n}: chitchat speedup vs sequential baseline {s:.2}x (t={t}), cost within {:.1e} relative",
                (cost - ref_cost).abs() / ref_cost
            );
        }
    }
    // Thread-scaling table per world: optimized chitchat wall by threads.
    let mut seen: Vec<(String, usize)> = Vec::new();
    for r in rows.iter().filter(|r| r.algorithm == "chitchat") {
        let key = (r.model.clone(), r.nodes);
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        let series: Vec<String> = rows
            .iter()
            .filter(|x| x.algorithm == "chitchat" && x.model == r.model && x.nodes == r.nodes)
            .map(|x| format!("t{}={:.0}ms", x.threads, x.wall_ms))
            .collect();
        eprintln!(
            "# scaling {}/{}: {} (busy {:.2})",
            r.model,
            r.nodes,
            series.join(" "),
            r.busy_frac()
        );
    }
}
