//! Optimizer benchmark suite: wall-clock, oracle-call, and memory accounting
//! for every schedule optimizer across graph models, sizes, and thread
//! counts, emitting machine-readable JSON (`BENCH_opt.json`).
//!
//! The headline row pair is `chitchat` vs `chitchat-ref`: the optimized
//! CHITCHAT (parallel oracle fan-out, allocation-free bucket peeling,
//! cached edge costs, provably-inert recomputation skipping) against the
//! preserved pre-optimization sequential implementation. Both drive the
//! same argmin greedy; exact ties between equally-priced candidates may
//! break differently (the bench asserts costs within 0.5% and reports the
//! delta — observed ~1e-5 relative at the 100k scale), so `speedup_vs_ref`
//! measures execution efficiency, not schedule quality.
//!
//! ```text
//! cargo run --release -p piggyback-bench --bin opt_bench -- [--smoke] \
//!     [--nodes <n>[,<n>...]] [--threads <t>[,<t>...]] [--out <file>]
//! ```
//!
//! `--smoke` shrinks everything for CI (a couple of seconds); the default
//! configuration runs up to a 100k-node / ~1M-edge Flickr-like graph —
//! the scale the paper reserves for PARALLELNOSY — plus a denser
//! Twitter-like mid-size instance.

use std::time::Instant;

use piggyback_bench::REFERENCE_RW_RATIO;
use piggyback_core::scheduler::{by_name_with_threads, Instance};
use piggyback_core::ChitChat;
use piggyback_graph::gen;
use piggyback_workload::Rates;

struct Args {
    smoke: bool,
    /// Node counts for the Flickr-like sweep (the Twitter-like instance
    /// uses the smallest entry: denser graphs, same edge ballpark).
    nodes: Vec<usize>,
    threads: Vec<usize>,
    out: Option<String>,
}

fn parse_list(v: &str, flag: &str) -> Vec<usize> {
    v.split(',')
        .map(|x| {
            x.parse()
                .unwrap_or_else(|_| panic!("invalid {flag}: {x:?}"))
        })
        .collect()
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let (mut nodes, mut threads, mut out) = (None, None, None);
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--nodes" => {
                nodes = Some(parse_list(&argv[i + 1], "--nodes"));
                i += 2;
            }
            "--threads" => {
                threads = Some(parse_list(&argv[i + 1], "--threads"));
                i += 2;
            }
            "--out" => {
                out = Some(argv[i + 1].clone());
                i += 2;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    Args {
        smoke,
        nodes: nodes.unwrap_or(if smoke {
            vec![2_000]
        } else {
            vec![10_000, 100_000]
        }),
        threads: threads.unwrap_or(if smoke { vec![1, 2] } else { vec![1, 2, 4, 8] }),
        out,
    }
}

/// Peak-RSS proxy: the process high-water mark from /proc (kB), 0 where
/// unavailable. Cumulative across the run, so per-row values are an upper
/// bound — useful for spotting blowups, not for per-algorithm accounting.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|v| v.parse::<u64>().ok())
            })
        })
        .unwrap_or(0)
}

struct Row {
    model: &'static str,
    nodes: usize,
    edges: usize,
    algorithm: String,
    threads: usize,
    wall_ms: f64,
    cost: f64,
    vs_hybrid: f64,
    oracle_calls: usize,
    iterations: usize,
    hubs: usize,
    peak_rss_kb: u64,
    speedup_vs_ref: Option<f64>,
}

impl Row {
    fn json(&self) -> String {
        let speedup = match self.speedup_vs_ref {
            Some(s) => format!(", \"speedup_vs_ref\": {s:.3}"),
            None => String::new(),
        };
        format!(
            concat!(
                "    {{\"model\": \"{}\", \"nodes\": {}, \"edges\": {}, ",
                "\"algorithm\": \"{}\", \"threads\": {}, \"wall_ms\": {:.1}, ",
                "\"cost\": {:.2}, \"vs_hybrid\": {:.4}, \"oracle_calls\": {}, ",
                "\"iterations\": {}, \"hubs\": {}, \"peak_rss_kb\": {}{}}}"
            ),
            self.model,
            self.nodes,
            self.edges,
            self.algorithm,
            self.threads,
            self.wall_ms,
            self.cost,
            self.vs_hybrid,
            self.oracle_calls,
            self.iterations,
            self.hubs,
            self.peak_rss_kb,
            speedup
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn run_one(
    model: &'static str,
    g: &piggyback_graph::CsrGraph,
    rates: &Rates,
    algorithm: &str,
    label: &str,
    threads: usize,
    hybrid_cost: f64,
    ref_wall_ms: Option<f64>,
) -> Row {
    let inst = Instance::new(g, rates);
    let (wall_ms, stats) = if algorithm == "chitchat-ref" {
        // The pre-optimization execution profile: serial, eager
        // recomputation after every selection, allocating heap-peel
        // oracle, per-probe singleton costs. (It shares the staging
        // filter and selection driver with the optimized path so the two
        // stay differentially comparable — see `chitchat.rs` docs.)
        let start = Instant::now();
        let res = ChitChat::default().run_reference(g, rates);
        let wall = start.elapsed().as_secs_f64() * 1e3;
        let cost = piggyback_core::schedule_cost(g, rates, &res.schedule);
        (wall, (cost, res.oracle_calls, 0usize, res.hub_selections))
    } else {
        let opt = by_name_with_threads(algorithm, threads).expect("registered scheduler");
        let out = opt.schedule(&inst);
        (
            out.stats.wall_time.as_secs_f64() * 1e3,
            (
                out.stats.cost,
                out.stats.oracle_calls,
                out.stats.iterations,
                out.stats.hubs_applied,
            ),
        )
    };
    let (cost, oracle_calls, iterations, hubs) = stats;
    // NaN hybrid_cost marks the hybrid row itself (its cost *is* the
    // baseline).
    let vs_hybrid = if hybrid_cost.is_finite() {
        hybrid_cost / cost
    } else {
        1.0
    };
    eprintln!(
        "#   {:<16} t={:<2} {:>10.1} ms  cost {:>12.1}  ({vs_hybrid:.3}x vs hybrid)",
        label, threads, wall_ms, cost,
    );
    Row {
        model,
        nodes: g.node_count(),
        edges: g.edge_count(),
        algorithm: label.to_string(),
        threads,
        wall_ms,
        cost,
        vs_hybrid,
        oracle_calls,
        iterations,
        hubs,
        peak_rss_kb: peak_rss_kb(),
        speedup_vs_ref: ref_wall_ms.map(|r| r / wall_ms),
    }
}

fn main() {
    let args = parse_args();
    let mut rows: Vec<Row> = Vec::new();
    let mut worlds: Vec<(&'static str, usize)> =
        args.nodes.iter().map(|&n| ("flickr", n)).collect();
    // One denser Twitter-like instance at the smallest size (its edge count
    // roughly doubles the Flickr preset's).
    worlds.push(("twitter", args.nodes[0]));

    for (model, n) in worlds {
        let g = match model {
            "flickr" => gen::flickr_like(n, 42),
            _ => gen::twitter_like(n, 42),
        };
        let rates = Rates::log_degree(&g, REFERENCE_RW_RATIO);
        eprintln!(
            "# opt_bench: {model} {} nodes / {} edges",
            g.node_count(),
            g.edge_count()
        );
        let hybrid_row = run_one(model, &g, &rates, "hybrid", "hybrid", 1, f64::NAN, None);
        let hybrid_cost = hybrid_row.cost;
        rows.push(hybrid_row);

        // Pre-optimization sequential CHITCHAT: the speedup baseline.
        let ref_row = run_one(
            model,
            &g,
            &rates,
            "chitchat-ref",
            "chitchat-ref",
            1,
            hybrid_cost,
            None,
        );
        let ref_wall = ref_row.wall_ms;
        let ref_cost = ref_row.cost;
        rows.push(ref_row);

        for &t in &args.threads {
            let row = run_one(
                model,
                &g,
                &rates,
                "chitchat",
                "chitchat",
                t,
                hybrid_cost,
                Some(ref_wall),
            );
            // Same argmin greedy; exact ties between equally-priced
            // candidates may break differently, so enforce equality to
            // 0.5% (observed deltas are ~1e-5 relative at scale).
            assert!(
                (row.cost - ref_cost).abs() <= 5e-3 * ref_cost,
                "{model}/{n}: optimized chitchat diverged from the reference greedy ({} vs {ref_cost})",
                row.cost
            );
            rows.push(row);
        }
        for &t in &args.threads {
            rows.push(run_one(
                model,
                &g,
                &rates,
                "sharded-chitchat",
                "sharded-chitchat",
                t,
                hybrid_cost,
                None,
            ));
        }
        for &t in &args.threads {
            rows.push(run_one(
                model,
                &g,
                &rates,
                "parallelnosy",
                "parallelnosy",
                t,
                hybrid_cost,
                None,
            ));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"opt\",\n  \"smoke\": {},\n  \"rw_ratio\": {},\n  \"seed\": 42,\n  \"results\": [\n{}\n  ]\n}}",
        args.smoke,
        REFERENCE_RW_RATIO,
        rows.iter().map(Row::json).collect::<Vec<_>>().join(",\n")
    );
    println!("{json}");
    if let Some(path) = &args.out {
        std::fs::write(path, format!("{json}\n")).expect("write --out file");
        eprintln!("# wrote {path}");
    }
    // Headline: best chitchat speedup vs the sequential baseline per world.
    for (model, n, ref_cost) in rows
        .iter()
        .filter(|r| r.algorithm == "chitchat-ref")
        .map(|r| (r.model, r.nodes, r.cost))
        .collect::<Vec<_>>()
    {
        let best = rows
            .iter()
            .filter(|r| r.model == model && r.nodes == n && r.algorithm == "chitchat")
            .filter_map(|r| r.speedup_vs_ref.map(|s| (s, r.threads, r.cost)))
            .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        if let Some((s, t, cost)) = best {
            eprintln!(
                "# {model}/{n}: chitchat speedup vs sequential baseline {s:.2}x (t={t}), cost within {:.1e} relative",
                (cost - ref_cost).abs() / ref_cost
            );
        }
    }
}
