//! Online serving benchmark: boots the `piggyback-serve` runtime once per
//! schedule family and drives it with the same interleaved
//! share/query/follow/unfollow workload, emitting machine-readable JSON
//! (throughput plus p50/p95/p99 latency per schedule).
//!
//! The paper's §4.3 ordering — piggybacking schedules sustain higher
//! throughput than the baselines once the system has enough servers that
//! batching no longer hides fan-out — shows up here *end-to-end in the
//! online path*, live churn and all.
//!
//! ```text
//! cargo run --release -p piggyback-bench --bin serve_bench -- [--smoke] \
//!     [--nodes <n>] [--servers <n>] [--duration-ms <n>] [--out <file>]
//! ```
//!
//! `--smoke` shrinks everything for CI (a few hundred ms per schedule);
//! the default configuration runs a 100k-node graph at 1000 servers.

use std::time::Duration;

use piggyback_bench::REFERENCE_RW_RATIO;
use piggyback_core::scheduler::{by_name, Instance};
use piggyback_graph::gen;
use piggyback_serve::{run_harness, Arrival, HarnessConfig, HarnessReport, ServeConfig};
use piggyback_workload::Rates;

/// The schedule families the acceptance ordering is stated over.
const SCHEDULES: [&str; 3] = ["push-all", "hybrid", "chitchat"];

struct Args {
    smoke: bool,
    nodes: usize,
    servers: usize,
    duration: Duration,
    out: Option<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let (mut nodes, mut servers, mut duration_ms) = (None, None, None);
    let mut out = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--nodes" => {
                nodes = Some(argv[i + 1].parse().expect("--nodes"));
                i += 2;
            }
            "--servers" => {
                servers = Some(argv[i + 1].parse().expect("--servers"));
                i += 2;
            }
            "--duration-ms" => {
                duration_ms = Some(argv[i + 1].parse().expect("--duration-ms"));
                i += 2;
            }
            "--out" => {
                out = Some(argv[i + 1].clone());
                i += 2;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    // Explicit flags win over the smoke/full presets, regardless of order.
    Args {
        smoke,
        nodes: nodes.unwrap_or(if smoke { 2000 } else { 100_000 }),
        servers: servers.unwrap_or(if smoke { 256 } else { 1000 }),
        duration: Duration::from_millis(duration_ms.unwrap_or(if smoke { 300 } else { 2000 })),
        out,
    }
}

fn json_result(name: &str, cost: f64, r: &HarnessReport) -> String {
    let churn = &r.serve.churn;
    let cache_total = r.serve.cache_hits + r.serve.cache_misses;
    format!(
        concat!(
            "    {{\"schedule\": \"{}\", \"cost\": {:.1}, \"ops\": {}, ",
            "\"throughput_ops_per_sec\": {:.1}, \"messages_per_op\": {:.3}, ",
            "\"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"max_ms\": {:.4}, ",
            "\"follows_applied\": {}, \"unfollows_applied\": {}, \"reopts\": {}, ",
            "\"epochs\": {}, \"cache_hit_rate\": {:.4}, \"staleness_ok\": {}}}"
        ),
        name,
        cost,
        r.ops,
        r.throughput(),
        r.messages as f64 / r.ops.max(1) as f64,
        r.quantile_ms(0.5),
        r.quantile_ms(0.95),
        r.quantile_ms(0.99),
        r.latency.max_ns() as f64 / 1e6,
        churn.follows_applied,
        churn.unfollows_applied,
        churn.reopts,
        r.serve.final_epoch,
        if cache_total > 0 {
            r.serve.cache_hits as f64 / cache_total as f64
        } else {
            0.0
        },
        churn.zero_violations()
    )
}

fn main() {
    let args = parse_args();
    let clients = if args.smoke { 2 } else { 4 };
    let churn_ratio = 0.02;
    eprintln!(
        "# serve_bench: {} nodes, {} servers, {:?} per schedule{}",
        args.nodes,
        args.servers,
        args.duration,
        if args.smoke { " (smoke)" } else { "" }
    );
    let g = gen::flickr_like(args.nodes, 42);
    let rates = Rates::log_degree(&g, REFERENCE_RW_RATIO);
    let inst = Instance::new(&g, &rates);
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for name in SCHEDULES {
        let opt = by_name(name).expect("registered scheduler");
        let outcome = opt.schedule(&inst);
        let cost = outcome.stats.cost;
        let report = run_harness(
            &g,
            &rates,
            outcome.schedule,
            by_name("hybrid").expect("hybrid registered"),
            ServeConfig {
                shards: args.servers,
                workers: 4,
                reopt_threshold: 0.25,
                ..Default::default()
            },
            &HarnessConfig {
                clients,
                duration: args.duration,
                churn_ratio,
                arrival: Arrival::Closed,
                seed: 7,
            },
        );
        assert!(
            report.serve.churn.zero_violations(),
            "{name}: staleness violated: {:?}",
            report.serve.churn.staleness_violation
        );
        eprintln!(
            "#   {:<9} {:>9.0} op/s  {:.3} msg/op  p50 {:.3}ms  p99 {:.3}ms",
            name,
            report.throughput(),
            report.messages as f64 / report.ops.max(1) as f64,
            report.quantile_ms(0.5),
            report.quantile_ms(0.99)
        );
        summary.push((name, report.throughput()));
        rows.push(json_result(name, cost, &report));
    }
    let json = format!
        (
        "{{\n  \"bench\": \"serve\",\n  \"smoke\": {},\n  \"nodes\": {},\n  \"edges\": {},\n  \"servers\": {},\n  \"clients\": {},\n  \"duration_ms\": {},\n  \"churn_ratio\": {},\n  \"results\": [\n{}\n  ]\n}}",
        args.smoke,
        g.node_count(),
        g.edge_count(),
        args.servers,
        clients,
        args.duration.as_millis(),
        churn_ratio,
        rows.join(",\n")
    );
    println!("{json}");
    if let Some(path) = &args.out {
        std::fs::write(path, format!("{json}\n")).expect("write --out file");
        eprintln!("# wrote {path}");
    }
    // The paper's ordering is a trend, not a per-run guarantee (placement
    // and thread scheduling add noise, especially in smoke runs) — report
    // it rather than asserting.
    let ordered = summary.windows(2).all(|w| w[1].1 >= w[0].1 * 0.95);
    eprintln!(
        "# throughput ordering chitchat >= hybrid >= push-all: {}",
        if ordered {
            "holds (within 5%)"
        } else {
            "NOT observed this run"
        }
    );
}
