//! Online serving benchmark: boots the `piggyback-serve` runtime once per
//! schedule family and drives it with the same interleaved
//! share/query/follow/unfollow workload, emitting machine-readable JSON
//! (throughput plus p50/p95/p99 latency per schedule).
//!
//! The paper's §4.3 ordering — piggybacking schedules sustain higher
//! throughput than the baselines once the system has enough servers that
//! batching no longer hides fan-out — shows up here *end-to-end in the
//! online path*, live churn and all.
//!
//! ```text
//! cargo run --release -p piggyback-bench --bin serve_bench -- [--smoke] \
//!     [--nodes <n>] [--servers <n>] [--duration-ms <n>] [--out <file>] \
//!     [--both] [--min-ops <ops/s>] [--metrics on|off] [--stats-out <file>]
//! ```
//!
//! `--metrics off` boots the runtimes without the observability layer —
//! CI runs the smoke twice and gates the metrics-on throughput at ≥ 95%
//! of metrics-off. `--stats-out` writes every run's final metrics
//! snapshot (instruments + per-shard wire scrape) as one JSON document;
//! with metrics on, each `results` row also embeds it under `"obs"`.
//!
//! `--smoke` shrinks everything for CI (a few hundred ms per schedule);
//! the default configuration runs a 100k-node graph at 1000 servers.
//!
//! `--chaos` switches to the fault-tolerance benchmark: an asymmetric
//! fault **matrix** over a replicated runtime (`--replication`, default 2)
//! with 5ms heartbeats and `--domains` failure domains (default 4).
//! Against a faultless twin baseline it sweeps: random kills (`--kill`
//! shards, default 1), a correlated **whole-domain kill** under
//! domain-spread placement and again under domain-blind placement (the
//! control that measures real data loss), a **kill + rejoin** cycle
//! (fresh empty process, anti-entropy catch-up, staleness-budgeted
//! readmit), **sustained delay**, **sustained drop**, and a
//! one-directional **partial partition** that heals. Every scenario must
//! finish with zero bounded-staleness violations (and, except the
//! domain-blind control, zero views lost). The JSON gains a `matrix`
//! section with per-scenario failure-lifecycle phase timings
//! (detection/failover/catch-up/readmit) and a `recovery` section for the
//! plain kill scenario. `--scenarios a,b,c` restricts the sweep (the
//! faultless baseline always runs).
//!
//! `--reopt threshold|continuous` switches to the re-optimization
//! comparison: the same heavy-churn storm (10× the default churn ratio)
//! served twice with `chitchat-stream` as the background re-optimizer,
//! once per [`ReoptMode`]. The JSON gains a `reopt_compare` section and
//! the run asserts that continuous re-optimization sustains a final
//! schedule cost no higher than the lazy threshold trigger, with zero
//! bounded-staleness violations in both modes.
//!
//! Every schedule family is optimized once and the harness runs over the
//! two production planes — `batched` (coalesced `ShardBatch` messages to
//! the shard-worker pool, pooled reply channel and buffers, bounded k-way
//! merges) and `direct` (the same coalesced protocol executed
//! caller-side, no thread hop). `--both` is the **before/after mode**: it
//! adds the `legacy` plane (per-request rendezvous channels, fresh
//! buffers, flat sort-merge — the pre-PR protocol) and the JSON carries a
//! per-schedule `speedup_vs_legacy` for the in-binary comparison.
//!
//! Every run also executes the **store microbenchmark**: `View::insert`
//! ring vs. the legacy `Vec` insert, and the tournament-merge query vs.
//! the sort-merge reference, reported as ns/op under `store_micro`.
//!
//! `--min-ops` turns the run into a regression gate: if the best batched
//! closed-loop throughput lands below the threshold, the process exits
//! non-zero (CI feeds it 80% of the committed baseline).
//!
//! `--pre-pr <file>` folds a JSON produced by the *pre-PR binary* (old
//! views, old query path, old RPC plane end to end) into the output as a
//! `pre_pr` section with per-schedule speedups — the honest whole-system
//! before/after, complementing `--both` which isolates the RPC/merge
//! planes inside one binary.

use std::time::{Duration, Instant};

use piggyback_bench::REFERENCE_RW_RATIO;
use piggyback_core::scheduler::{by_name, Instance};
use piggyback_graph::gen;
use piggyback_serve::{
    run_harness, Arrival, ChaosSpec, HarnessConfig, HarnessReport, ReoptMode, RpcMode, ServeConfig,
};
use piggyback_store::server::{QueryScratch, StoreServer};
use piggyback_store::{EventTuple, FaultPlan, PartitionDir};
use piggyback_workload::Rates;

/// The schedule families the acceptance ordering is stated over.
const SCHEDULES: [&str; 3] = ["push-all", "hybrid", "chitchat"];

struct Args {
    smoke: bool,
    nodes: usize,
    servers: usize,
    duration: Duration,
    out: Option<String>,
    both: bool,
    min_ops: Option<f64>,
    pre_pr: Option<String>,
    metrics: bool,
    stats_out: Option<String>,
    chaos: bool,
    kill: usize,
    replication: usize,
    domains: usize,
    scenarios: Option<Vec<String>>,
    reopt: Option<ReoptMode>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut both = false;
    let (mut nodes, mut servers, mut duration_ms) = (None, None, None);
    let mut out = None;
    let mut min_ops = None;
    let mut pre_pr = None;
    let mut metrics = true;
    let mut stats_out = None;
    let mut chaos = false;
    let mut kill = 1;
    let mut replication = 2;
    let mut domains = 4;
    let mut scenarios = None;
    let mut reopt = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--both" => {
                both = true;
                i += 1;
            }
            "--chaos" => {
                chaos = true;
                i += 1;
            }
            "--kill" => {
                kill = argv[i + 1].parse().expect("--kill");
                i += 2;
            }
            "--replication" => {
                replication = argv[i + 1].parse().expect("--replication");
                i += 2;
            }
            "--domains" => {
                domains = argv[i + 1].parse().expect("--domains");
                i += 2;
            }
            "--scenarios" => {
                scenarios = Some(
                    argv[i + 1]
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect::<Vec<_>>(),
                );
                i += 2;
            }
            "--reopt" => {
                reopt = Some(ReoptMode::parse(&argv[i + 1]).unwrap_or_else(|| {
                    panic!("--reopt takes threshold|continuous, got {:?}", argv[i + 1])
                }));
                i += 2;
            }
            "--metrics" => {
                metrics = match argv[i + 1].as_str() {
                    "on" => true,
                    "off" => false,
                    other => panic!("--metrics takes on|off, got {other:?}"),
                };
                i += 2;
            }
            "--stats-out" => {
                stats_out = Some(argv[i + 1].clone());
                i += 2;
            }
            "--nodes" => {
                nodes = Some(argv[i + 1].parse().expect("--nodes"));
                i += 2;
            }
            "--servers" => {
                servers = Some(argv[i + 1].parse().expect("--servers"));
                i += 2;
            }
            "--duration-ms" => {
                duration_ms = Some(argv[i + 1].parse().expect("--duration-ms"));
                i += 2;
            }
            "--out" => {
                out = Some(argv[i + 1].clone());
                i += 2;
            }
            "--min-ops" => {
                min_ops = Some(argv[i + 1].parse().expect("--min-ops"));
                i += 2;
            }
            "--pre-pr" => {
                pre_pr = Some(argv[i + 1].clone());
                i += 2;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    // Explicit flags win over the smoke/full presets, regardless of order.
    // Chaos mode has its own presets: fewer shards (each kill removes a
    // meaningful slice of capacity) and enough wall time for kill →
    // detect → failover → recover to play out inside the run.
    Args {
        smoke,
        nodes: nodes.unwrap_or(if smoke { 2000 } else { 100_000 }),
        servers: servers.unwrap_or(if chaos {
            16
        } else if smoke {
            256
        } else {
            1000
        }),
        duration: Duration::from_millis(duration_ms.unwrap_or(if chaos && smoke {
            800
        } else if smoke {
            300
        } else {
            2000
        })),
        out,
        both,
        min_ops,
        pre_pr,
        metrics,
        stats_out,
        chaos,
        kill,
        replication,
        domains,
        scenarios,
        reopt,
    }
}

/// Extracts `(schedule, throughput, p99_ms)` rows from a serve_bench JSON
/// without a JSON dependency: scans each `results` row for the two fields.
fn parse_bench_rows(json: &str) -> Vec<(String, f64, f64)> {
    let mut rows = Vec::new();
    for line in json.lines() {
        let Some(name_at) = line.find("\"schedule\": \"") else {
            continue;
        };
        let rest = &line[name_at + 13..];
        let Some(end) = rest.find('"') else { continue };
        let name = rest[..end].to_string();
        let field = |key: &str| -> Option<f64> {
            let at = line.find(key)?;
            let tail = &line[at + key.len()..];
            let num: String = tail
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
                .collect();
            num.parse().ok()
        };
        if let (Some(t), Some(p99)) = (field("\"throughput_ops_per_sec\": "), field("\"p99_ms\": "))
        {
            rows.push((name, t, p99));
        }
    }
    rows
}

/// The pre-ring-buffer view: recency-sorted `Vec`, O(n) shift per insert
/// plus an O(n) duplicate scan. Kept here (bench-only) as the *before*
/// half of the insert microbenchmark.
#[derive(Default)]
struct LegacyView {
    events: Vec<EventTuple>,
    capacity: usize,
}

impl LegacyView {
    fn with_capacity(capacity: usize) -> Self {
        LegacyView {
            events: Vec::new(),
            capacity,
        }
    }

    fn insert(&mut self, t: EventTuple) {
        let pos = self.events.partition_point(|e| {
            e.timestamp > t.timestamp || (*e > t && e.timestamp == t.timestamp)
        });
        if self.events.get(pos) == Some(&t) {
            return;
        }
        if self
            .events
            .iter()
            .any(|e| e.user == t.user && e.event_id == t.event_id)
        {
            return;
        }
        self.events.insert(pos, t);
        if self.capacity > 0 && self.events.len() > self.capacity {
            self.events.truncate(self.capacity);
        }
    }
}

struct MicroResult {
    insert_legacy_ns: f64,
    insert_ring_ns: f64,
    query_reference_ns: f64,
    query_merge_ns: f64,
}

/// Insert/query ns/op, old path vs new path, on a view shape matching the
/// serving defaults (capacity 128, k = 10, ~20 views per query).
fn store_microbench(iters: u64) -> MicroResult {
    const CAPACITY: usize = 128;
    // Insert: a monotonic stream (the dominant case) into a full view.
    let mut legacy = LegacyView::with_capacity(CAPACITY);
    let mut ring = piggyback_store::View::with_capacity(CAPACITY);
    for i in 0..CAPACITY as u64 {
        let e = EventTuple::new((i % 16) as u32, i, i);
        legacy.insert(e);
        ring.insert(e);
    }
    let t0 = Instant::now();
    for i in 0..iters {
        legacy.insert(EventTuple::new((i % 16) as u32, 1000 + i, 1000 + i));
    }
    let insert_legacy_ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    let t0 = Instant::now();
    for i in 0..iters {
        ring.insert(EventTuple::new((i % 16) as u32, 1000 + i, 1000 + i));
    }
    let insert_ring_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

    // Query: top-10 across 20 warm views (a pull-heavy fan-in).
    let mut server = StoreServer::new(CAPACITY);
    let views: Vec<u32> = (0..20).collect();
    for i in 0..(20 * CAPACITY) as u64 {
        server.update(&[(i % 20) as u32], EventTuple::new((i % 16) as u32, i, i));
    }
    let q_iters = iters / 4;
    let t0 = Instant::now();
    let mut sink = 0usize;
    for _ in 0..q_iters {
        sink += server.query_reference(&views, 10).len();
    }
    let query_reference_ns = t0.elapsed().as_nanos() as f64 / q_iters as f64;
    let mut scratch = QueryScratch::new();
    let t0 = Instant::now();
    for _ in 0..q_iters {
        sink += server.query_with(&views, 10, &mut scratch).len();
    }
    let query_merge_ns = t0.elapsed().as_nanos() as f64 / q_iters as f64;
    assert_eq!(sink, 2 * q_iters as usize * 10);
    MicroResult {
        insert_legacy_ns,
        insert_ring_ns,
        query_reference_ns,
        query_merge_ns,
    }
}

fn json_result(name: &str, rpc: RpcMode, cost: f64, r: &HarnessReport) -> String {
    let churn = &r.serve.churn;
    let cache_total = r.serve.cache_hits + r.serve.cache_misses;
    // The embedded metrics snapshot (registry + wire scrape), or null when
    // the run had metrics off (the overhead-gate comparison arm).
    let obs = r
        .serve
        .metrics
        .as_ref()
        .map_or_else(|| "null".to_string(), piggyback_obs::Snapshot::to_json);
    format!(
        concat!(
            "    {{\"schedule\": \"{}\", \"rpc\": \"{}\", \"cost\": {:.1}, \"ops\": {}, ",
            "\"throughput_ops_per_sec\": {:.1}, \"messages_per_op\": {:.3}, ",
            "\"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"max_ms\": {:.4}, ",
            "\"follows_applied\": {}, \"unfollows_applied\": {}, \"reopts\": {}, ",
            "\"epochs\": {}, \"cache_hit_rate\": {:.4}, \"staleness_ok\": {}, ",
            "\"replication\": {}, \"failovers\": {}, \"unavailable_ms\": {:.1}, ",
            "\"max_replica_lag_ms\": {:.2}, \"views_lost\": {}, \"rejoins\": {}, ",
            "\"readmits\": {}, \"detection_ms\": {:.1}, \"failover_ms\": {:.1}, ",
            "\"catchup_ms\": {:.1}, \"readmit_ms\": {:.1}, \"obs\": {}}}"
        ),
        name,
        rpc.name(),
        cost,
        r.ops,
        r.throughput(),
        r.messages as f64 / r.ops.max(1) as f64,
        r.quantile_ms(0.5),
        r.quantile_ms(0.95),
        r.quantile_ms(0.99),
        r.latency.max_ns() as f64 / 1e6,
        churn.follows_applied,
        churn.unfollows_applied,
        churn.reopts,
        r.serve.final_epoch,
        if cache_total > 0 {
            r.serve.cache_hits as f64 / cache_total as f64
        } else {
            0.0
        },
        churn.zero_violations(),
        r.serve.replication,
        r.serve.failovers,
        r.serve.unavailable_ms,
        r.serve.max_replica_lag_ms,
        r.serve.views_lost,
        r.serve.rejoins,
        r.serve.readmits,
        r.serve.detection_ms,
        r.serve.failover_ms,
        r.serve.catchup_ms,
        r.serve.readmit_ms,
        obs
    )
}

/// One row of the chaos matrix: a named fault pattern, the domain layout
/// it runs under, and what a correct run must show. Every scenario drives
/// the same storm against the same replicated runtime; only the faults
/// differ.
struct Scenario {
    name: &'static str,
    /// Failure domains for this run's placement (0 = domain-blind — the
    /// control that measures what spread placement buys).
    domains: usize,
    /// Wire-level fault plan (drop/duplicate/delay) behind the injector.
    plan: FaultPlan,
    /// Process-level chaos: kills or partitions driven mid-storm.
    chaos: Option<ChaosSpec>,
    /// Failovers a correct run must record. Zero means *must record
    /// none*: sustained wire faults may not masquerade as dead shards.
    min_failovers: u64,
    /// The domain-blind control *must* lose views — that loss is the
    /// measured win of spread placement. Everyone else must lose zero.
    expect_loss: bool,
    /// Whether the scenario must complete a rejoin plus staleness-gated
    /// readmit cycle.
    expect_readmit: bool,
}

/// Chaos mode: boot a replicated runtime with heartbeats on and sweep an
/// asymmetric fault matrix — random kills, a correlated whole-domain kill
/// under spread and under domain-blind placement, kill + rejoin with
/// anti-entropy catch-up, sustained delay, sustained drop, and a partial
/// one-directional partition that heals. Every scenario must hold the
/// paper's bounded-staleness guarantee; a faultless twin run at the same
/// replicated configuration is the throughput yardstick.
fn run_chaos(args: &Args) {
    let clients = if args.smoke { 2 } else { 4 };
    let churn_ratio = 0.02;
    let ndomains = args.domains.min(args.servers).max(1);
    // Shards in failure domain 0 under the contiguous block layout — the
    // correlated-kill target for the domain scenarios.
    let domain0: Vec<usize> = (0..args.servers)
        .filter(|&s| s * ndomains / args.servers == 0)
        .collect();
    eprintln!(
        "# serve_bench --chaos: {} nodes, {} shards, replication {}, {} domains, {:?}{}",
        args.nodes,
        args.servers,
        args.replication,
        ndomains,
        args.duration,
        if args.smoke { " (smoke)" } else { "" }
    );
    let g = gen::flickr_like(args.nodes, 42);
    let rates = Rates::log_degree(&g, REFERENCE_RW_RATIO);
    let inst = Instance::new(&g, &rates);
    let opt = by_name("hybrid").expect("registered scheduler");
    let outcome = opt.schedule(&inst);
    let cost = outcome.stats.cost;
    // Heartbeat every 5ms: with down_misses = 4 a dead shard is confirmed
    // in ~20ms, well inside the 50ms pull-cache TTL that doubles as the
    // Theorem-1 staleness budget a lagging replica may legally carry —
    // and that a rejoining shard must fit before readmission.
    let config = ServeConfig {
        shards: args.servers,
        workers: 4,
        replication: args.replication,
        domains: ndomains,
        heartbeat_interval: Duration::from_millis(5),
        pull_cache_ttl: Duration::from_millis(50),
        reopt_threshold: 0.25,
        metrics: args.metrics,
        ..Default::default()
    };
    let load = HarnessConfig {
        clients,
        duration: args.duration,
        churn_ratio,
        arrival: Arrival::Closed,
        seed: 7,
        stats_interval: None,
        chaos: None,
    };
    let run = |cfg: ServeConfig, chaos: Option<ChaosSpec>| {
        run_harness(
            &g,
            &rates,
            outcome.schedule.clone(),
            by_name("hybrid").expect("hybrid registered"),
            cfg,
            &HarnessConfig {
                chaos,
                ..load.clone()
            },
        )
    };
    let baseline = run(config, None);
    eprintln!(
        "#   {:<18} {:>9.0} op/s  p99 {:.3}ms",
        "faultless",
        baseline.throughput(),
        baseline.quantile_ms(0.99)
    );
    assert!(
        baseline.serve.churn.zero_violations(),
        "faultless replicated run violated staleness: {:?}",
        baseline.serve.churn.staleness_violation
    );
    // Duplicate-heavy delivery (5% of batches sent twice) rides along
    // with every kill scenario: it exercises the idempotent write path
    // without dropping updates, keeping "no view lost" falsifiable.
    let dup = FaultPlan {
        seed: 7,
        duplicate_per_mille: 50,
        ..Default::default()
    };
    let scenarios = [
        // Random kills at mid-storm: the baseline fault the recovery
        // section has always gated on.
        Scenario {
            name: "kill",
            domains: ndomains,
            plan: dup,
            chaos: Some(ChaosSpec {
                kill_shards: args.kill,
                kill_at_frac: 0.5,
                ..Default::default()
            }),
            min_failovers: args.kill as u64,
            expect_loss: false,
            expect_readmit: false,
        },
        // Correlated whole-domain kill under domain-spread placement:
        // every replica set straddles domains, so losing one whole
        // domain loses zero views.
        Scenario {
            name: "kill-domain-spread",
            domains: ndomains,
            plan: dup,
            chaos: Some(ChaosSpec {
                kill_shards: domain0.len(),
                kill_at_frac: 0.5,
                kill_set: Some(domain0.clone()),
                ..Default::default()
            }),
            min_failovers: domain0.len() as u64,
            expect_loss: false,
            expect_readmit: false,
        },
        // The same correlated kill under domain-blind placement: the
        // control that measures the data loss spread placement prevents.
        Scenario {
            name: "kill-domain-blind",
            domains: 0,
            plan: dup,
            chaos: Some(ChaosSpec {
                kill_shards: domain0.len(),
                kill_at_frac: 0.5,
                kill_set: Some(domain0.clone()),
                ..Default::default()
            }),
            min_failovers: domain0.len() as u64,
            expect_loss: true,
            expect_readmit: false,
        },
        // Kill one shard, then restart it as a fresh empty process: the
        // failover controller must detect the rejoin, stream views back
        // via anti-entropy, and readmit only inside the staleness budget.
        Scenario {
            name: "kill-rejoin",
            domains: ndomains,
            plan: dup,
            chaos: Some(ChaosSpec {
                kill_shards: 1,
                kill_at_frac: 0.35,
                recover_at_frac: Some(0.6),
                ..Default::default()
            }),
            min_failovers: 1,
            expect_loss: false,
            expect_readmit: true,
        },
        // Sustained wire delay: 15% of batches arrive 1ms late. Slow is
        // not dead — detection must not fail anyone over.
        Scenario {
            name: "sustained-delay",
            domains: ndomains,
            plan: FaultPlan {
                seed: 7,
                delay_per_mille: 150,
                delay: Duration::from_millis(1),
                ..Default::default()
            },
            chaos: None,
            min_failovers: 0,
            expect_loss: false,
            expect_readmit: false,
        },
        // Sustained update drop: 3% of replica deliveries vanish. The
        // resilient write path must absorb it without staleness escapes
        // or spurious failovers.
        Scenario {
            name: "sustained-drop",
            domains: ndomains,
            plan: FaultPlan {
                seed: 7,
                drop_update_per_mille: 30,
                ..Default::default()
            },
            chaos: None,
            min_failovers: 0,
            expect_loss: false,
            expect_readmit: false,
        },
        // Partial one-directional partition, no kill: the shard stays up
        // but unreachable inbound, must be failed over, then healed and
        // readmitted through the same rejoin pipeline.
        Scenario {
            name: "partial-partition",
            domains: ndomains,
            plan: FaultPlan {
                seed: 7,
                ..Default::default()
            },
            chaos: Some(ChaosSpec {
                kill_shards: 1,
                kill_at_frac: 0.4,
                partition: Some(PartitionDir::Inbound),
                recover_at_frac: Some(0.7),
                ..Default::default()
            }),
            min_failovers: 1,
            expect_loss: false,
            expect_readmit: true,
        },
    ];
    if let Some(wanted) = &args.scenarios {
        for w in wanted {
            assert!(
                scenarios.iter().any(|s| s.name == w),
                "--scenarios: unknown scenario {w:?} (known: {:?})",
                scenarios.iter().map(|s| s.name).collect::<Vec<_>>()
            );
        }
    }
    let mut rows = vec![json_result(
        "hybrid-faultless",
        RpcMode::Batched,
        cost,
        &baseline,
    )];
    let mut matrix = Vec::new();
    let mut kill_report = None;
    for sc in &scenarios {
        if let Some(wanted) = &args.scenarios {
            if !wanted.iter().any(|w| w == sc.name) {
                continue;
            }
        }
        let report = run(
            ServeConfig {
                domains: sc.domains,
                faults: Some(sc.plan),
                ..config
            },
            sc.chaos.clone(),
        );
        let churn = &report.serve.churn;
        let vs_faultless = report.throughput() / baseline.throughput().max(1e-9);
        eprintln!(
            "#   {:<18} {:>9.0} op/s ({:>3.0}%)  failovers {} lost {} rejoins {} readmits {}  \
             detect {:.1}ms failover {:.1}ms catchup {:.1}ms readmit {:.1}ms  staleness_ok {}",
            sc.name,
            report.throughput(),
            vs_faultless * 100.0,
            report.serve.failovers,
            report.serve.views_lost,
            report.serve.rejoins,
            report.serve.readmits,
            report.serve.detection_ms,
            report.serve.failover_ms,
            report.serve.catchup_ms,
            report.serve.readmit_ms,
            churn.zero_violations()
        );
        assert!(
            churn.zero_violations(),
            "{}: staleness violated: {:?}",
            sc.name,
            churn.staleness_violation
        );
        if sc.min_failovers == 0 {
            assert_eq!(
                report.serve.failovers, 0,
                "{}: sustained wire faults must not trigger failovers, saw {}",
                sc.name, report.serve.failovers
            );
        } else {
            assert!(
                report.serve.failovers >= sc.min_failovers,
                "{}: expected >= {} failovers, saw {}",
                sc.name,
                sc.min_failovers,
                report.serve.failovers
            );
        }
        if sc.expect_loss {
            assert!(
                report.serve.views_lost > 0,
                "{}: the domain-blind control lost no views — the spread-placement \
                 win is unmeasured",
                sc.name
            );
        } else {
            assert_eq!(
                report.serve.views_lost, 0,
                "{}: lost {} views despite domain-spread replicas",
                sc.name, report.serve.views_lost
            );
        }
        if sc.expect_readmit {
            assert!(
                report.serve.rejoins >= 1 && report.serve.readmits >= 1,
                "{}: expected a completed rejoin + readmit cycle, saw {} rejoins / {} readmits",
                sc.name,
                report.serve.rejoins,
                report.serve.readmits
            );
            // Foreground traffic must ride through catch-up: the full run
            // gates 80% of faultless throughput (smoke runs are too short
            // to average out the detection gap).
            if !args.smoke {
                assert!(
                    vs_faultless >= 0.8,
                    "{}: throughput fell to {:.0}% of faultless during catch-up",
                    sc.name,
                    vs_faultless * 100.0
                );
            }
        }
        matrix.push(format!(
            concat!(
                "    {{\"scenario\": \"{}\", \"staleness_ok\": {}, \"failovers\": {}, ",
                "\"views_lost\": {}, \"rejoins\": {}, \"readmits\": {}, ",
                "\"detection_ms\": {:.1}, \"failover_ms\": {:.1}, \"catchup_ms\": {:.1}, ",
                "\"readmit_ms\": {:.1}, \"unavailable_ms\": {:.1}, ",
                "\"max_replica_lag_ms\": {:.2}, \"throughput_vs_faultless\": {:.3}}}"
            ),
            sc.name,
            churn.zero_violations(),
            report.serve.failovers,
            report.serve.views_lost,
            report.serve.rejoins,
            report.serve.readmits,
            report.serve.detection_ms,
            report.serve.failover_ms,
            report.serve.catchup_ms,
            report.serve.readmit_ms,
            report.serve.unavailable_ms,
            report.serve.max_replica_lag_ms,
            vs_faultless
        ));
        rows.push(json_result(
            &format!("hybrid-{}", sc.name),
            RpcMode::Batched,
            cost,
            &report,
        ));
        if sc.name == "kill" {
            kill_report = Some(report);
        }
    }
    // The `recovery` section keeps its pre-matrix shape, keyed off the
    // plain-kill scenario, so existing gates keep parsing it.
    let recovery = kill_report.as_ref().map_or_else(String::new, |r| {
        format!(
            ",\n  \"recovery\": {{\"failovers\": {}, \"users_failed_over\": {}, \
             \"unavailable_ms\": {:.1}, \"max_replica_lag_ms\": {:.2}, \
             \"throughput_vs_faultless\": {:.3}, \"staleness_ok\": {}}}",
            r.serve.failovers,
            r.serve.churn.users_failed_over,
            r.serve.unavailable_ms,
            r.serve.max_replica_lag_ms,
            r.throughput() / baseline.throughput().max(1e-9),
            r.serve.churn.zero_violations()
        )
    });
    let json = format!(
        "{{\n  \"bench\": \"serve_chaos\",\n  \"smoke\": {},\n  \"nodes\": {},\n  \"edges\": {},\n  \
         \"shards\": {},\n  \"replication\": {},\n  \"domains\": {},\n  \"killed_shards\": {},\n  \
         \"duration_ms\": {},\n  \"heartbeat_ms\": 5,\n  \"staleness_budget_ms\": 50,\n  \
         \"results\": [\n{}\n  ],\n  \"matrix\": [\n{}\n  ]{}\n}}",
        args.smoke,
        g.node_count(),
        g.edge_count(),
        args.servers,
        args.replication,
        ndomains,
        args.kill,
        args.duration.as_millis(),
        rows.join(",\n"),
        matrix.join(",\n"),
        recovery
    );
    println!("{json}");
    if let Some(path) = &args.out {
        std::fs::write(path, format!("{json}\n")).expect("write --out file");
        eprintln!("# wrote {path}");
    }
}

/// Re-optimization mode comparison: the same heavy-churn storm served
/// twice with the streaming re-optimizer — once under the paper's lazy
/// threshold trigger, once continuously under the amortized budget. The
/// claim this benchmark commits to: a one-pass re-optimizer is cheap
/// enough that re-optimizing *continuously* holds the sustained schedule
/// cost at or below what the lazy trigger sustains, with zero staleness
/// violations either way.
fn run_reopt(args: &Args, headline: ReoptMode) {
    let clients = if args.smoke { 2 } else { 4 };
    // Ten times the default churn: this mode exists to measure how well
    // re-optimization claws back churn-degraded cost, so degrade hard.
    let churn_ratio = 0.2;
    eprintln!(
        "# serve_bench --reopt {}: {} nodes, {} servers, churn {churn_ratio}, {:?}{}",
        headline.name(),
        args.nodes,
        args.servers,
        args.duration,
        if args.smoke { " (smoke)" } else { "" }
    );
    let g = gen::flickr_like(args.nodes, 42);
    let rates = Rates::log_degree(&g, REFERENCE_RW_RATIO);
    let inst = Instance::new(&g, &rates);
    let opt = by_name("chitchat-stream").expect("registered scheduler");
    let outcome = opt.schedule(&inst);
    let cost = outcome.stats.cost;
    let run = |mode: ReoptMode| {
        run_harness(
            &g,
            &rates,
            outcome.schedule.clone(),
            by_name("chitchat-stream").expect("chitchat-stream registered"),
            ServeConfig {
                shards: args.servers,
                workers: 4,
                reopt_threshold: 0.25,
                reopt_mode: mode,
                metrics: args.metrics,
                ..Default::default()
            },
            &HarnessConfig {
                clients,
                duration: args.duration,
                churn_ratio,
                arrival: Arrival::Closed,
                seed: 7,
                stats_interval: None,
                chaos: None,
            },
        )
    };
    let mut rows = Vec::new();
    let mut report_of = |mode: ReoptMode| {
        let report = run(mode);
        let churn = &report.serve.churn;
        eprintln!(
            "#   {:<11} {:>9.0} op/s  cost {:.1} -> {:.1} ({} reopts)  staleness_ok {}",
            mode.name(),
            report.throughput(),
            churn.base_cost,
            churn.final_cost,
            churn.reopts,
            churn.zero_violations()
        );
        rows.push(json_result(
            &format!("chitchat-stream-{}", mode.name()),
            RpcMode::Batched,
            cost,
            &report,
        ));
        report
    };
    let thr = report_of(ReoptMode::Threshold);
    let cont = report_of(ReoptMode::Continuous);
    let (tc, cc) = (thr.serve.churn.final_cost, cont.serve.churn.final_cost);
    let held = cc / tc.max(1e-9);
    eprintln!(
        "#   continuous sustains {:.1} vs threshold {:.1} ({:.1}% of lazy-trigger cost)",
        cc,
        tc,
        held * 100.0
    );
    let json = format!(
        "{{\n  \"bench\": \"serve_reopt\",\n  \"smoke\": {},\n  \"nodes\": {},\n  \"edges\": {},\n  \
         \"servers\": {},\n  \"duration_ms\": {},\n  \"churn_ratio\": {},\n  \
         \"reopt_scheduler\": \"chitchat-stream\",\n  \"results\": [\n{}\n  ],\n  \
         \"reopt_compare\": {{\"threshold_final_cost\": {:.1}, \"continuous_final_cost\": {:.1}, \
         \"continuous_vs_threshold\": {:.4}, \"threshold_reopts\": {}, \"continuous_reopts\": {}, \
         \"staleness_ok\": {}}}\n}}",
        args.smoke,
        g.node_count(),
        g.edge_count(),
        args.servers,
        args.duration.as_millis(),
        churn_ratio,
        rows.join(",\n"),
        tc,
        cc,
        held,
        thr.serve.churn.reopts,
        cont.serve.churn.reopts,
        thr.serve.churn.zero_violations() && cont.serve.churn.zero_violations()
    );
    println!("{json}");
    if let Some(path) = &args.out {
        std::fs::write(path, format!("{json}\n")).expect("write --out file");
        eprintln!("# wrote {path}");
    }
    assert!(
        thr.serve.churn.zero_violations() && cont.serve.churn.zero_violations(),
        "staleness violated under re-optimization: threshold {:?}, continuous {:?}",
        thr.serve.churn.staleness_violation,
        cont.serve.churn.staleness_violation
    );
    assert!(
        cont.serve.churn.reopts >= thr.serve.churn.reopts,
        "continuous mode re-optimized less often ({}) than the lazy trigger ({})",
        cont.serve.churn.reopts,
        thr.serve.churn.reopts
    );
    // The smoke run is too short for more than one re-optimization to
    // land, so it only sanity-checks the plumbing (within noise); the full
    // run must genuinely hold the sustained cost at or below the lazy
    // trigger's.
    let tolerance = if args.smoke { 1.01 } else { 1.001 };
    assert!(
        cc <= tc * tolerance,
        "continuous re-optimization sustained a higher cost ({cc:.1}) than \
         the lazy trigger ({tc:.1})"
    );
}

fn main() {
    let args = parse_args();
    if args.chaos {
        run_chaos(&args);
        return;
    }
    if let Some(mode) = args.reopt {
        run_reopt(&args, mode);
        return;
    }
    let clients = if args.smoke { 2 } else { 4 };
    let churn_ratio = 0.02;
    eprintln!(
        "# serve_bench: {} nodes, {} servers, {:?} per schedule{}{}",
        args.nodes,
        args.servers,
        args.duration,
        if args.smoke { " (smoke)" } else { "" },
        if args.both { " (before/after)" } else { "" }
    );
    let micro = store_microbench(if args.smoke { 50_000 } else { 400_000 });
    eprintln!(
        "#   store micro: insert {:.0} -> {:.0} ns/op ({:.1}x), query {:.0} -> {:.0} ns/op ({:.1}x)",
        micro.insert_legacy_ns,
        micro.insert_ring_ns,
        micro.insert_legacy_ns / micro.insert_ring_ns.max(1e-9),
        micro.query_reference_ns,
        micro.query_merge_ns,
        micro.query_reference_ns / micro.query_merge_ns.max(1e-9)
    );
    let g = gen::flickr_like(args.nodes, 42);
    let rates = Rates::log_degree(&g, REFERENCE_RW_RATIO);
    let inst = Instance::new(&g, &rates);
    let mut rows = Vec::new();
    let mut stats_rows = Vec::new();
    let mut summary = Vec::new();
    let mut speedups = Vec::new();
    let mut best_batched = 0.0f64;
    let modes: &[RpcMode] = if args.both {
        &[RpcMode::Legacy, RpcMode::Batched, RpcMode::Direct]
    } else {
        &[RpcMode::Batched, RpcMode::Direct]
    };
    for name in SCHEDULES {
        let opt = by_name(name).expect("registered scheduler");
        let outcome = opt.schedule(&inst);
        let cost = outcome.stats.cost;
        let mut per_mode = Vec::new();
        for &rpc in modes {
            let report = run_harness(
                &g,
                &rates,
                outcome.schedule.clone(),
                by_name("hybrid").expect("hybrid registered"),
                ServeConfig {
                    shards: args.servers,
                    workers: 4,
                    reopt_threshold: 0.25,
                    rpc,
                    metrics: args.metrics,
                    ..Default::default()
                },
                &HarnessConfig {
                    clients,
                    duration: args.duration,
                    churn_ratio,
                    arrival: Arrival::Closed,
                    seed: 7,
                    stats_interval: None,
                    chaos: None,
                },
            );
            assert!(
                report.serve.churn.zero_violations(),
                "{name}/{}: staleness violated: {:?}",
                rpc.name(),
                report.serve.churn.staleness_violation
            );
            eprintln!(
                "#   {:<9} {:<7} {:>9.0} op/s  {:.3} msg/op  p50 {:.3}ms  p99 {:.3}ms",
                name,
                rpc.name(),
                report.throughput(),
                report.messages as f64 / report.ops.max(1) as f64,
                report.quantile_ms(0.5),
                report.quantile_ms(0.99)
            );
            if rpc == RpcMode::Direct {
                summary.push((name, report.throughput()));
            }
            if rpc == RpcMode::Batched {
                best_batched = best_batched.max(report.throughput());
            }
            per_mode.push((rpc, report.throughput()));
            if let Some(snap) = &report.serve.metrics {
                stats_rows.push(format!("  \"{}_{}\": {}", name, rpc.name(), snap.to_json()));
            }
            rows.push(json_result(name, rpc, cost, &report));
        }
        if args.both {
            let of = |mode: RpcMode| {
                per_mode
                    .iter()
                    .find(|(m, _)| *m == mode)
                    .map(|&(_, t)| t)
                    .unwrap_or(0.0)
            };
            let (legacy, batched, direct) = (
                of(RpcMode::Legacy),
                of(RpcMode::Batched),
                of(RpcMode::Direct),
            );
            let speedup = if legacy > 0.0 { batched / legacy } else { 0.0 };
            let direct_speedup = if legacy > 0.0 { direct / legacy } else { 0.0 };
            eprintln!(
                "#   {name:<9} vs legacy: batched {speedup:.2}x, direct {direct_speedup:.2}x"
            );
            speedups.push(format!(
                "    {{\"schedule\": \"{name}\", \"legacy_ops_per_sec\": {legacy:.1}, \
                 \"batched_ops_per_sec\": {batched:.1}, \"direct_ops_per_sec\": {direct:.1}, \
                 \"speedup_vs_legacy\": {speedup:.3}, \
                 \"direct_speedup_vs_legacy\": {direct_speedup:.3}}}"
            ));
        }
    }
    let micro_json = format!(
        concat!(
            "{{\n    \"view_insert_legacy_ns\": {:.1}, \"view_insert_ring_ns\": {:.1}, ",
            "\"view_insert_speedup\": {:.2},\n    \"query_reference_ns\": {:.1}, ",
            "\"query_merge_ns\": {:.1}, \"query_speedup\": {:.2}\n  }}"
        ),
        micro.insert_legacy_ns,
        micro.insert_ring_ns,
        micro.insert_legacy_ns / micro.insert_ring_ns.max(1e-9),
        micro.query_reference_ns,
        micro.query_merge_ns,
        micro.query_reference_ns / micro.query_merge_ns.max(1e-9)
    );
    let mut speedup_json = if args.both {
        format!(",\n  \"before_after\": [\n{}\n  ]", speedups.join(",\n"))
    } else {
        String::new()
    };
    if let Some(path) = &args.pre_pr {
        let old = std::fs::read_to_string(path).expect("read --pre-pr file");
        let mut rows_json = Vec::new();
        for (name, old_ops, old_p99) in parse_bench_rows(&old) {
            let new_ops = summary
                .iter()
                .find(|(n, _)| *n == name)
                .map(|&(_, t)| t)
                .unwrap_or(0.0);
            let speedup = if old_ops > 0.0 {
                new_ops / old_ops
            } else {
                0.0
            };
            eprintln!("#   {name:<9} vs pre-PR runtime: {old_ops:.0} -> {new_ops:.0} op/s ({speedup:.2}x)");
            rows_json.push(format!(
                "    {{\"schedule\": \"{name}\", \"pre_pr_ops_per_sec\": {old_ops:.1}, \
                 \"pre_pr_p99_ms\": {old_p99:.4}, \"ops_per_sec\": {new_ops:.1}, \
                 \"speedup_vs_pre_pr\": {speedup:.3}}}"
            ));
        }
        speedup_json.push_str(&format!(
            ",\n  \"pre_pr\": [\n{}\n  ]",
            rows_json.join(",\n")
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"smoke\": {},\n  \"nodes\": {},\n  \"edges\": {},\n  \
         \"servers\": {},\n  \"clients\": {},\n  \"duration_ms\": {},\n  \"churn_ratio\": {},\n  \
         \"store_micro\": {},\n  \"results\": [\n{}\n  ]{}\n}}",
        args.smoke,
        g.node_count(),
        g.edge_count(),
        args.servers,
        clients,
        args.duration.as_millis(),
        churn_ratio,
        micro_json,
        rows.join(",\n"),
        speedup_json
    );
    println!("{json}");
    if let Some(path) = &args.out {
        std::fs::write(path, format!("{json}\n")).expect("write --out file");
        eprintln!("# wrote {path}");
    }
    if let Some(path) = &args.stats_out {
        let stats = format!("{{\n{}\n}}\n", stats_rows.join(",\n"));
        std::fs::write(path, stats).expect("write --stats-out file");
        eprintln!("# wrote {path}");
    }
    // The paper's ordering is a trend, not a per-run guarantee (placement
    // and thread scheduling add noise, especially in smoke runs) — report
    // it rather than asserting.
    let ordered = summary.windows(2).all(|w| w[1].1 >= w[0].1 * 0.95);
    eprintln!(
        "# throughput ordering chitchat >= hybrid >= push-all: {}",
        if ordered {
            "holds (within 5%)"
        } else {
            "NOT observed this run"
        }
    );
    if let Some(min) = args.min_ops {
        if best_batched < min {
            eprintln!(
                "# REGRESSION: best batched throughput {best_batched:.0} op/s \
                 below the {min:.0} op/s floor"
            );
            std::process::exit(1);
        }
        eprintln!("# regression gate passed: {best_batched:.0} >= {min:.0} op/s");
    }
}
