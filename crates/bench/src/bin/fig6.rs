//! Figure 6: *actual* per-client throughput of the store prototype as the
//! number of data-store servers grows, PARALLELNOSY vs FEEDINGFRENZY.
//!
//! Paper shape: absolute per-client throughput falls with more servers
//! (each request touches more distinct servers); the PN/FF ratio is ≈1 (FF
//! sometimes slightly ahead) in small systems and grows past a crossover
//! around 200 servers, reaching ≈1.2 at 500 and ≈1.35 at 1000.
//!
//! Uses the threaded prototype: shard workers behind channels, client
//! threads replaying a rate-faithful trace, every message carrying the
//! 24-byte wire encoding. Wall-clock requests/second, averaged over trials
//! (random placement makes single runs irregular — §4.3 notes the same).
//!
//! ```text
//! cargo run --release -p piggyback-bench --bin fig6 -- [nodes]
//! ```

use piggyback_bench::{
    flickr_dataset, nodes_from_args, print_dataset_banner, print_header, print_row,
};
use piggyback_core::parallelnosy::ParallelNosy;
use piggyback_core::schedule::Schedule;
use piggyback_core::scheduler::{Hybrid, Instance, Scheduler};
use piggyback_graph::CsrGraph;
use piggyback_store::cluster::{Cluster, ClusterConfig};
use piggyback_workload::Rates;

const TRIALS: u64 = 3;

fn measure(
    g: &CsrGraph,
    rates: &Rates,
    sched: &Schedule,
    servers: usize,
    clients: usize,
    requests: usize,
    workers: usize,
) -> (f64, f64) {
    let (mut rps, mut msgs) = (0.0, 0.0);
    for trial in 0..TRIALS {
        let cfg = ClusterConfig {
            servers,
            placement_seed: trial,
            ..Default::default()
        };
        let (stats, _) = Cluster::new(g, sched, cfg).run_concurrent(
            g,
            rates,
            clients,
            requests,
            workers,
            17 + trial,
        );
        rps += stats.requests_per_sec() / clients as f64;
        msgs += stats.messages as f64 / stats.requests as f64;
    }
    (rps / TRIALS as f64, msgs / TRIALS as f64)
}

fn main() {
    let nodes = nodes_from_args();
    let d = flickr_dataset(nodes, 42);
    print_dataset_banner(&d);
    println!("# Figure 6: actual per-client throughput (req/s) vs number of servers");

    let inst = Instance::new(&d.graph, &d.rates);
    let schedulers: [&dyn Scheduler; 2] = [
        &ParallelNosy {
            max_iterations: 20,
            ..ParallelNosy::default()
        },
        &Hybrid,
    ];
    let [pn, ff] = schedulers.map(|s| s.schedule(&inst).schedule);

    let clients = 4;
    let requests_per_client = 4000;
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);

    print_header(&[
        "servers",
        "pn_req_per_sec",
        "ff_req_per_sec",
        "actual_improvement_ratio",
        "pn_msgs_per_req",
        "ff_msgs_per_req",
    ]);
    for servers in [1usize, 4, 16, 64, 200, 500, 1000] {
        let (pn_rps, pn_msgs) = measure(
            &d.graph,
            &d.rates,
            &pn,
            servers,
            clients,
            requests_per_client,
            workers,
        );
        let (ff_rps, ff_msgs) = measure(
            &d.graph,
            &d.rates,
            &ff,
            servers,
            clients,
            requests_per_client,
            workers,
        );
        print_row(&[
            servers.to_string(),
            format!("{pn_rps:.0}"),
            format!("{ff_rps:.0}"),
            format!("{:.3}", pn_rps / ff_rps),
            format!("{pn_msgs:.3}"),
            format!("{ff_msgs:.3}"),
        ]);
    }
}
