//! Ablation: piggybacking gains as a function of graph clustering.
//!
//! The paper's §1 claim — "the high clustering coefficient of social
//! networks implies the presence of many hubs, making hub-based schedules
//! very efficient" — tested directly on two generator families where
//! clustering is a knob and everything else is held fixed:
//!
//! * copying model, sweeping the copy probability (heavy-tailed degrees);
//! * planted partition, sweeping community strength at constant expected
//!   degree (uniform degrees) — isolating clustering from degree skew.
//!
//! Expected shape: improvement ≈ 1 at zero clustering (Erdős–Rényi limit),
//! growing monotonically with it.
//!
//! ```text
//! cargo run --release -p piggyback-bench --bin ablation_clustering -- [nodes]
//! ```

use piggyback_bench::{nodes_from_args, print_header, print_row};
use piggyback_core::parallelnosy::ParallelNosy;
use piggyback_core::scheduler::{Hybrid, Instance, Scheduler};
use piggyback_graph::gen::{copying, planted_partition, CopyingConfig, PlantedPartitionConfig};
use piggyback_graph::stats;
use piggyback_workload::Rates;

/// Improvement of `s` over the hybrid baseline on one instance.
fn improvement(s: &dyn Scheduler, g: &piggyback_graph::CsrGraph, r: &Rates) -> f64 {
    let inst = Instance::new(g, r);
    Hybrid.schedule(&inst).stats.cost / s.schedule(&inst).stats.cost
}

fn main() {
    let nodes = nodes_from_args().min(6000);
    let pn: &dyn Scheduler = &ParallelNosy {
        max_iterations: 100,
        ..ParallelNosy::default()
    };

    println!("# Ablation A: copying model, sweep copy probability");
    print_header(&["copy_prob", "clustering", "pn_improvement"]);
    for cp in [0.0, 0.3, 0.6, 0.8, 0.9, 0.95] {
        let g = copying(CopyingConfig {
            nodes,
            follows_per_node: 8,
            copy_prob: cp,
            seed: 42,
        });
        let r = Rates::log_degree(&g, 5.0);
        let imp = improvement(pn, &g, &r);
        let cc = stats::sampled_clustering_coefficient(&g, 300, 7);
        print_row(&[format!("{cp}"), format!("{cc:.3}"), format!("{imp:.3}")]);
    }

    println!("# Ablation B: planted partition, sweep community strength");
    println!("# (expected degree held at ~12 by rebalancing p_intra/p_inter)");
    print_header(&["p_intra", "clustering", "pn_improvement"]);
    let n = nodes.min(2000); // O(n^2) generator
    let communities = n / 20; // 20-node communities
    let avg_degree = 12.0;
    for strength in [0.0, 0.25, 0.5, 0.75, 0.95, 1.0] {
        // Split the degree budget between intra and inter edges.
        let intra_pairs = 19.0; // other members of my community
        let inter_pairs = (n - 20) as f64;
        let p_intra = avg_degree * strength / intra_pairs;
        let p_inter = avg_degree * (1.0 - strength) / inter_pairs;
        let g = planted_partition(PlantedPartitionConfig {
            nodes: n,
            communities,
            p_intra: p_intra.min(1.0),
            p_inter: p_inter.min(1.0),
            seed: 42,
        });
        let r = Rates::log_degree(&g, 5.0);
        let imp = improvement(pn, &g, &r);
        let cc = stats::sampled_clustering_coefficient(&g, 300, 7);
        print_row(&[
            format!("{:.3}", p_intra.min(1.0)),
            format!("{cc:.3}"),
            format!("{imp:.3}"),
        ]);
    }
}
