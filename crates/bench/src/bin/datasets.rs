//! Dataset description (§4.1's role): structural statistics of the
//! synthetic stand-ins next to the real crawls' published numbers, so a
//! reader can judge the substitution.
//!
//! ```text
//! cargo run --release -p piggyback-bench --bin datasets -- [nodes]
//! ```

use piggyback_bench::{both_datasets, nodes_from_args, print_header, print_row};
use piggyback_graph::stats;

fn main() {
    let nodes = nodes_from_args();
    println!("# Real crawls (paper §4.1): flickr 2,409,730 nodes / 71,345,981 edges;");
    println!("#                           twitter 82,949,778 nodes / 1,423,194,279 edges.");
    println!("# Stand-ins below preserve relative density, reciprocity and hub-level");
    println!("# clustering at laptop scale (see DESIGN.md for the calibration).");
    print_header(&[
        "dataset",
        "nodes",
        "edges",
        "avg_out_degree",
        "max_out_degree",
        "p99_out_degree",
        "reciprocity",
        "clustering",
        "wedge_closure",
    ]);
    for d in both_datasets(nodes, 42) {
        let g = &d.graph;
        let out = stats::out_degree_summary(g);
        let rec = stats::reciprocity(g);
        let cc = stats::sampled_clustering_coefficient(g, 500, 7);
        let (closed, wedges) = stats::piggyback_triangles(g, 500, 9);
        print_row(&[
            d.name.to_string(),
            g.node_count().to_string(),
            g.edge_count().to_string(),
            format!("{:.2}", out.mean),
            out.max.to_string(),
            out.p99.to_string(),
            format!("{rec:.3}"),
            format!("{cc:.3}"),
            format!("{:.3}", closed as f64 / wedges.max(1) as f64),
        ]);
    }
}
