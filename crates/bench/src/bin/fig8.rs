//! Figure 8: load balancing — normalized query rate per server (mean and
//! variance) for PARALLELNOSY vs FEEDINGFRENZY schedules.
//!
//! Paper shape: both schedules balance well; average per-server load falls
//! as servers grow (log–log straight line), with small variance bars.
//!
//! ```text
//! cargo run --release -p piggyback-bench --bin fig8 -- [nodes]
//! ```

use piggyback_bench::{
    flickr_dataset, nodes_from_args, print_dataset_banner, print_header, print_row,
};
use piggyback_core::parallelnosy::ParallelNosy;
use piggyback_core::scheduler::{Hybrid, Instance, Scheduler};
use piggyback_store::placement::PlacementCost;
use piggyback_store::topology::Topology;

fn main() {
    let nodes = nodes_from_args();
    let d = flickr_dataset(nodes, 42);
    print_dataset_banner(&d);
    println!("# Figure 8: normalized query load per server (mean, variance)");

    let inst = Instance::new(&d.graph, &d.rates);
    let schedulers: [&dyn Scheduler; 2] = [
        &ParallelNosy {
            max_iterations: 20,
            ..ParallelNosy::default()
        },
        &Hybrid,
    ];
    let [pc_pn, pc_ff] =
        schedulers.map(|s| PlacementCost::new(&d.graph, &d.rates, &s.schedule(&inst).schedule));

    print_header(&[
        "servers",
        "pn_mean_load",
        "pn_load_variance",
        "ff_mean_load",
        "ff_load_variance",
    ]);
    for servers in [1usize, 10, 100, 1000, 10000] {
        let p = Topology::hash(d.graph.node_count(), servers, 5);
        let (pn_mean, pn_var) = pc_pn.load_balance(&p);
        let (ff_mean, ff_var) = pc_ff.load_balance(&p);
        print_row(&[
            servers.to_string(),
            format!("{pn_mean:.6}"),
            format!("{pn_var:.3e}"),
            format!("{ff_mean:.6}"),
            format!("{ff_var:.3e}"),
        ]);
    }
}
