//! Approximation-quality audit: CHITCHAT / PARALLELNOSY / hybrid vs the
//! exact optimum on tiny random instances.
//!
//! Theorem 4 guarantees an `O(ln n)` factor for CHITCHAT; this binary
//! measures the *actual* gap (typically within a few percent of optimal on
//! small graphs) where brute force is feasible.
//!
//! ```text
//! cargo run --release -p piggyback-bench --bin optgap -- [trials]
//! ```

use piggyback_bench::{print_header, print_row};
use piggyback_core::chitchat::ChitChat;
use piggyback_core::parallelnosy::ParallelNosy;
use piggyback_core::scheduler::{Exact, Hybrid, Instance, Scheduler};
use piggyback_graph::gen::{copying, CopyingConfig};
use piggyback_workload::Rates;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    println!(
        "# Approximation gap vs exact optimum, tiny clustered graphs (7 nodes, copying model)"
    );
    let heuristics: [&dyn Scheduler; 3] = [&ChitChat::default(), &ParallelNosy::default(), &Hybrid];
    let mut stats: Vec<(&str, Vec<f64>)> =
        heuristics.iter().map(|s| (s.name(), Vec::new())).collect();
    let mut solved = 0usize;
    for seed in 0..trials as u64 {
        // Small but triangle-rich, with pull-friendly uniform rates so hub
        // choices are genuinely contested.
        let g = copying(CopyingConfig {
            nodes: 7,
            follows_per_node: 3,
            copy_prob: 0.9,
            seed,
        });
        let r = Rates::uniform(g.node_count(), 1.0, 1.6);
        let inst = Instance::new(&g, &r);
        if !Exact.supports(&inst) {
            continue;
        }
        let opt = Exact.schedule(&inst);
        if opt.stats.cost <= 0.0 {
            continue;
        }
        solved += 1;
        for (s, (_, ratios)) in heuristics.iter().zip(&mut stats) {
            ratios.push(s.schedule(&inst).stats.cost / opt.stats.cost);
        }
    }
    print_header(&[
        "algorithm",
        "mean_ratio_to_opt",
        "p95_ratio",
        "worst_ratio",
        "optimal_found_pct",
    ]);
    for (name, ratios) in &mut stats {
        if ratios.is_empty() {
            print_row(&[
                name.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = ratios.len();
        let mean = ratios.iter().sum::<f64>() / n as f64;
        let p95 = ratios[((n - 1) as f64 * 0.95) as usize];
        let worst = ratios.last().copied().unwrap_or(1.0);
        let exact = ratios.iter().filter(|r| **r < 1.0 + 1e-9).count();
        print_row(&[
            name.to_string(),
            format!("{mean:.4}"),
            format!("{p95:.4}"),
            format!("{worst:.4}"),
            format!("{:.1}", 100.0 * exact as f64 / n as f64),
        ]);
    }
    println!("# instances solved exactly: {solved}/{trials}");
}
