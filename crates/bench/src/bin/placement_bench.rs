//! Placement benchmark: total vs cross-server message cost of every
//! registered partitioner under one optimized schedule, as JSON.
//!
//! The paper's cost model counts every request-induced message; with a
//! topology in the picture, only *cross-server* messages pay network cost
//! (batching makes co-located views free — §4.3). This bench quantifies
//! how much of the schedule's message rate each partitioner keeps
//! intra-server:
//!
//! ```text
//! cargo run --release -p piggyback-bench --bin placement_bench -- [--smoke] \
//!     [--nodes <n>] [--servers <n>] [--algorithm <scheduler>] [--seed <s>] \
//!     [--out <file>]
//! ```
//!
//! `--smoke` shrinks the graph for CI; the default configuration runs the
//! acceptance setting (100k-node flickr stand-in, 16 shards).

use std::time::Instant;

use piggyback_bench::REFERENCE_RW_RATIO;
use piggyback_core::cost::CostModel;
use piggyback_core::scheduler::{by_name, Instance};
use piggyback_graph::gen;
use piggyback_store::topology::{edges_cut, partitioners, PartitionRequest};
use piggyback_workload::Rates;

struct Args {
    smoke: bool,
    nodes: usize,
    servers: usize,
    algorithm: String,
    seed: u64,
    out: Option<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let (mut nodes, mut servers) = (None, None);
    let mut algorithm = "parallelnosy".to_string();
    let mut seed = 42u64;
    let mut out = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--nodes" => {
                nodes = Some(argv[i + 1].parse().expect("--nodes"));
                i += 2;
            }
            "--servers" => {
                servers = Some(argv[i + 1].parse().expect("--servers"));
                i += 2;
            }
            "--algorithm" => {
                algorithm = argv[i + 1].clone();
                i += 2;
            }
            "--seed" => {
                seed = argv[i + 1].parse().expect("--seed");
                i += 2;
            }
            "--out" => {
                out = Some(argv[i + 1].clone());
                i += 2;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    // Explicit flags win over the smoke/full presets, regardless of order.
    Args {
        smoke,
        nodes: nodes.unwrap_or(if smoke { 5000 } else { 100_000 }),
        servers: servers.unwrap_or(16),
        algorithm,
        seed,
        out,
    }
}

fn main() {
    let args = parse_args();
    eprintln!(
        "# placement_bench: {} nodes, {} servers, schedule {}{}",
        args.nodes,
        args.servers,
        args.algorithm,
        if args.smoke { " (smoke)" } else { "" }
    );
    let g = gen::flickr_like(args.nodes, args.seed);
    let rates = Rates::log_degree(&g, REFERENCE_RW_RATIO);
    let opt = by_name(&args.algorithm).expect("registered scheduler");
    let t0 = Instant::now();
    let outcome = opt.schedule(&Instance::new(&g, &rates));
    eprintln!(
        "#   schedule cost {:.1} ({:.1}s to optimize)",
        outcome.stats.cost,
        t0.elapsed().as_secs_f64()
    );
    let req = PartitionRequest {
        graph: &g,
        rates: &rates,
        schedule: Some(&outcome.schedule),
        servers: args.servers,
        seed: args.seed,
        domains: None,
    };
    let mut rows = Vec::new();
    let mut cross_by_name: Vec<(String, f64)> = Vec::new();
    for p in partitioners() {
        let t0 = Instant::now();
        let topology = p.partition(&req);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let acct = CostModel::with_topology(topology.assignment(), topology.servers()).accounting(
            &g,
            &rates,
            &outcome.schedule,
        );
        let sizes = topology.shard_sizes();
        let cut = edges_cut(&g, &topology);
        eprintln!(
            "#   {:<15} cross {:>14.1} ({:>5.1}% of total)  cut {:>8} edges  wall {:>8.1}ms",
            p.name(),
            acct.cross,
            100.0 * acct.cross_fraction(),
            cut,
            wall_ms
        );
        cross_by_name.push((p.name().to_string(), acct.cross));
        rows.push(format!(
            concat!(
                "    {{\"partitioner\": \"{}\", \"total_cost\": {:.1}, ",
                "\"intra_cost\": {:.1}, \"cross_cost\": {:.1}, ",
                "\"cross_fraction\": {:.4}, \"edges_cut\": {}, ",
                "\"min_shard_users\": {}, \"max_shard_users\": {}, ",
                "\"wall_ms\": {:.1}}}"
            ),
            p.name(),
            acct.total,
            acct.intra,
            acct.cross,
            acct.cross_fraction(),
            cut,
            sizes.iter().min().unwrap(),
            sizes.iter().max().unwrap(),
            wall_ms
        ));
    }
    let hash_cross = cross_by_name
        .iter()
        .find(|(n, _)| n == "hash")
        .map(|&(_, c)| c)
        .expect("hash partitioner registered");
    let aware_cross = cross_by_name
        .iter()
        .find(|(n, _)| n == "schedule-aware")
        .map(|&(_, c)| c)
        .expect("schedule-aware partitioner registered");
    let reduction = 1.0 - aware_cross / hash_cross;
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"placement\",\n  \"smoke\": {},\n",
            "  \"nodes\": {},\n  \"edges\": {},\n  \"servers\": {},\n",
            "  \"schedule_algorithm\": \"{}\",\n  \"schedule_cost\": {:.1},\n",
            "  \"seed\": {},\n",
            "  \"cross_cost_reduction_vs_hash\": {:.4},\n",
            "  \"results\": [\n{}\n  ]\n}}"
        ),
        args.smoke,
        g.node_count(),
        g.edge_count(),
        args.servers,
        args.algorithm,
        outcome.stats.cost,
        args.seed,
        reduction,
        rows.join(",\n")
    );
    println!("{json}");
    if let Some(path) = &args.out {
        std::fs::write(path, format!("{json}\n")).expect("write --out file");
        eprintln!("# wrote {path}");
    }
    eprintln!(
        "# schedule-aware cuts cross-server cost {:.1}% vs hash",
        reduction * 100.0
    );
}
