//! Prototype saturation behaviour: per-request latency percentiles as the
//! offered load (client threads) grows.
//!
//! §4.3: "Since queries involve only simple processing of in-memory data
//! structures, the latency per request is very low unless the system
//! becomes saturated." Expected shape: p50/p99 flat while throughput scales
//! with clients, then climbing sharply once the shard workers saturate.
//!
//! ```text
//! cargo run --release -p piggyback-bench --bin prototype_latency -- [nodes]
//! ```

use piggyback_bench::{
    flickr_dataset, nodes_from_args, print_dataset_banner, print_header, print_row,
};
use piggyback_core::parallelnosy::ParallelNosy;
use piggyback_core::scheduler::{Instance, Scheduler};
use piggyback_store::cluster::{Cluster, ClusterConfig};

fn main() {
    let nodes = if std::env::args().nth(1).is_some() {
        nodes_from_args()
    } else {
        2000
    };
    let d = flickr_dataset(nodes, 42);
    print_dataset_banner(&d);
    println!("# Prototype latency vs offered load (workers fixed at 2)");

    let scheduler: &dyn Scheduler = &ParallelNosy {
        max_iterations: 15,
        ..ParallelNosy::default()
    };
    let pn = scheduler
        .schedule(&Instance::new(&d.graph, &d.rates))
        .schedule;

    print_header(&["clients", "total_req_per_sec", "p50_us", "p99_us", "max_ms"]);
    for clients in [1usize, 2, 4, 8, 16, 32] {
        let cluster = Cluster::new(
            &d.graph,
            &pn,
            ClusterConfig {
                servers: 64,
                ..Default::default()
            },
        );
        let (stats, _) = cluster.run_concurrent(&d.graph, &d.rates, clients, 3000, 2, 5);
        print_row(&[
            clients.to_string(),
            format!("{:.0}", stats.requests_per_sec()),
            format!("{:.1}", stats.latency.quantile_ns(0.5) as f64 / 1_000.0),
            format!("{:.1}", stats.latency.quantile_ns(0.99) as f64 / 1_000.0),
            format!("{:.2}", stats.latency.max_ns() as f64 / 1_000_000.0),
        ]);
    }
}
