//! Figure 4: predicted improvement ratio of PARALLELNOSY over the
//! FEEDINGFRENZY hybrid baseline, per iteration, on the Flickr- and
//! Twitter-like graphs.
//!
//! Paper shape: both curves rise sharply in the first iterations, then
//! plateau; twitter (denser) stabilizes higher (≈2.1) than flickr (≈1.9).
//!
//! ```text
//! cargo run --release -p piggyback-bench --bin fig4 -- [nodes]
//! ```

use piggyback_bench::{
    both_datasets, nodes_from_args, print_dataset_banner, print_header, print_row,
};
use piggyback_core::parallelnosy::ParallelNosy;

fn main() {
    let nodes = nodes_from_args();
    println!("# Figure 4: predicted improvement ratio of ParallelNosy vs FF per iteration");
    for d in both_datasets(nodes, 42) {
        print_dataset_banner(&d);
        let pn = ParallelNosy {
            max_iterations: 20,
            ..ParallelNosy::default()
        };
        // Native API, not the Scheduler trait: this figure plots the
        // per-iteration cost series, which only ParallelNosyResult carries.
        let res = pn.run(&d.graph, &d.rates);
        let ff_cost = res.cost_history[0];
        print_header(&["dataset", "iteration", "improvement_ratio"]);
        for (i, c) in res.cost_history.iter().enumerate() {
            print_row(&[
                d.name.to_string(),
                i.to_string(),
                format!("{:.4}", ff_cost / c),
            ]);
        }
        println!(
            "# {}: final improvement {:.3} after {} iterations, {} hubs applied",
            d.name,
            ff_cost / res.cost_history.last().unwrap(),
            res.iterations,
            res.hubs_applied
        );
    }
}
