//! Figure 9: CHITCHAT vs PARALLELNOSY on graph samples, as a function of
//! the read/write ratio, for (a) random-walk and (b) breadth-first samples.
//!
//! Paper shape: CHITCHAT dominates PARALLELNOSY everywhere; gains shrink as
//! the workload becomes read-dominated (r/w → 100, where hybrid ≈ push-all
//! is near-optimal); BFS samples show larger gains than random-walk samples
//! because they preserve hub degrees.
//!
//! ```text
//! cargo run --release -p piggyback-bench --bin fig9 -- [nodes] [rw|bfs]
//! ```

use piggyback_bench::{both_datasets, nodes_from_args, print_header, print_row};
use piggyback_core::chitchat::ChitChat;
use piggyback_core::parallelnosy::ParallelNosy;
use piggyback_core::scheduler::{Hybrid, Instance, Scheduler};
use piggyback_graph::sample::{bfs_sample, random_walk_sample};
use piggyback_graph::CsrGraph;
use piggyback_workload::Rates;

const SAMPLES: usize = 5;

/// Per-scheduler improvement over hybrid, in the order of `schedulers`.
///
/// Two PARALLELNOSY configurations are reported: the paper-faithful one
/// (lock every hub-graph edge, 20 iterations — reproducing Figure 9's
/// "CHITCHAT significantly outperforms PARALLELNOSY") and this library's
/// refined one (mutate-only locks, run to convergence), which closes most
/// of that gap.
fn improvements(g: &CsrGraph, rates: &Rates, schedulers: &[&dyn Scheduler]) -> Vec<f64> {
    let inst = Instance::new(g, rates);
    let ff_cost = Hybrid.schedule(&inst).stats.cost;
    schedulers
        .iter()
        .map(|s| ff_cost / s.schedule(&inst).stats.cost)
        .collect()
}

fn main() {
    // CHITCHAT is centralized and O(heavy) in the initial oracle pass; the
    // default scale keeps the 100-run sweep (2 datasets × 2 samplers × 5
    // ratios × 5 samples) under a minute. Override via argv[1].
    let nodes = if std::env::args().nth(1).is_some() {
        nodes_from_args()
    } else {
        2000
    };
    let which = std::env::args().nth(2).unwrap_or_else(|| "both".into());
    println!("# Figure 9: ChitChat vs ParallelNosy on graph samples vs read/write ratio");

    let schedulers: [&dyn Scheduler; 3] = [
        &ChitChat::default(),
        &ParallelNosy {
            max_iterations: 200,
            ..ParallelNosy::default()
        },
        &ParallelNosy {
            max_iterations: 20,
            conservative_locks: true,
            ..ParallelNosy::default()
        },
    ];

    // Samples are a fraction of the source graph, mirroring the paper's
    // 5M-edge samples of billion-edge graphs.
    for d in both_datasets(nodes, 42) {
        let target_edges = d.graph.edge_count() / 6;
        for (method, label) in [("rw", "random-walk"), ("bfs", "breadth-first")] {
            if which != "both" && which != method {
                continue;
            }
            println!("# panel: {label} sampling, dataset {}", d.name);
            print_header(&[
                "dataset",
                "sampling",
                "read_write_ratio",
                "chitchat_improvement",
                "parallelnosy_refined_improvement",
                "parallelnosy_paper_improvement",
            ]);
            for ratio in [1.0f64, 3.0, 5.0, 10.0, 30.0, 100.0] {
                let mut acc = vec![0.0; schedulers.len()];
                for s in 0..SAMPLES {
                    let sampled = match method {
                        "rw" => random_walk_sample(&d.graph, target_edges, s as u64),
                        _ => bfs_sample(&d.graph, target_edges, s as u64),
                    };
                    let rates = Rates::log_degree(&sampled.graph, ratio);
                    for (a, imp) in
                        acc.iter_mut()
                            .zip(improvements(&sampled.graph, &rates, &schedulers))
                    {
                        *a += imp;
                    }
                }
                let mut row = vec![d.name.to_string(), label.to_string(), format!("{ratio}")];
                row.extend(acc.iter().map(|a| format!("{:.4}", a / SAMPLES as f64)));
                print_row(&row);
            }
        }
    }
}
