//! Figure 5: incremental vs static PARALLELNOSY when batches of new edges
//! arrive.
//!
//! Protocol (matching §4.2 "Incremental updates"): optimize *half* of the
//! Flickr-like graph's edges with PARALLELNOSY, then add back `k` of the
//! held-out edges and compare two policies on the grown graph —
//!
//! * **incremental**: the §3.3 rule (new edges served directly, hybrid);
//! * **static**: re-run PARALLELNOSY from scratch on the grown graph.
//!
//! Both are reported as predicted improvement over FEEDINGFRENZY on the
//! grown graph. Paper shape: incremental degrades slowly as the batch
//! grows; static stays flat; even batches of a third of the graph keep the
//! incremental policy close.
//!
//! ```text
//! cargo run --release -p piggyback-bench --bin fig5 -- [nodes]
//! ```

use piggyback_bench::{
    flickr_dataset, nodes_from_args, print_dataset_banner, print_header, print_row,
};
use piggyback_core::incremental::IncrementalScheduler;
use piggyback_core::parallelnosy::ParallelNosy;
use piggyback_core::scheduler::{Hybrid, Instance, Scheduler};
use piggyback_graph::GraphBuilder;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

fn main() {
    let nodes = nodes_from_args();
    let d = flickr_dataset(nodes, 42);
    print_dataset_banner(&d);
    println!("# Figure 5: improvement over FF after adding k edges: incremental vs re-optimized");

    // Split edges: half into the base graph, half held out for batches.
    let mut rng = StdRng::seed_from_u64(7);
    let mut all_edges: Vec<(u32, u32)> = d.graph.edges().map(|(_, u, v)| (u, v)).collect();
    all_edges.shuffle(&mut rng);
    let half = all_edges.len() / 2;
    let (base_edges, held_out) = all_edges.split_at(half);

    let mut b = GraphBuilder::with_capacity(half);
    b.reserve_nodes(d.graph.node_count());
    for &(u, v) in base_edges {
        b.add_edge(u, v);
    }
    let base = b.build();

    let pn: &dyn Scheduler = &ParallelNosy {
        max_iterations: 20,
        ..ParallelNosy::default()
    };
    let base_schedule = pn.schedule(&Instance::new(&base, &d.rates)).schedule;

    print_header(&[
        "batch_size",
        "incremental_improvement",
        "static_improvement",
    ]);
    // Log-spaced batch sizes up to the full held-out half.
    let mut batch_sizes = vec![];
    let mut k = 100usize;
    while k < held_out.len() {
        batch_sizes.push(k);
        k *= 4;
    }
    batch_sizes.push(held_out.len());

    for &k in &batch_sizes {
        // Incremental: serve the k new edges directly.
        let mut inc =
            IncrementalScheduler::new(base.clone(), d.rates.clone(), base_schedule.clone());
        for &(u, v) in &held_out[..k] {
            inc.add_edge(u, v);
        }
        let grown = inc.freeze_graph();
        let grown_inst = Instance::new(&grown, &d.rates);
        let ff_cost = Hybrid.schedule(&grown_inst).stats.cost;
        let inc_improvement = ff_cost / inc.cost();

        // Static: re-optimize the grown graph from scratch.
        let static_improvement = ff_cost / pn.schedule(&grown_inst).stats.cost;

        print_row(&[
            k.to_string(),
            format!("{inc_improvement:.4}"),
            format!("{static_improvement:.4}"),
        ]);
    }
}
