//! Figure 7: placement-aware *predicted* throughput (normalized by the
//! one-server optimum) as servers grow from 1 to 10 000.
//!
//! Paper shape: FF is slightly ahead below ≈200 servers (co-location makes
//! piggybacking's extra hub hops occasionally wasteful), PN wins beyond the
//! crossover, and the ratio converges to the placement-free Figure 4 value
//! as co-location probability vanishes.
//!
//! ```text
//! cargo run --release -p piggyback-bench --bin fig7 -- [nodes]
//! ```

use piggyback_bench::{
    flickr_dataset, nodes_from_args, print_dataset_banner, print_header, print_row,
};
use piggyback_core::parallelnosy::ParallelNosy;
use piggyback_core::scheduler::{Hybrid, Instance, Scheduler};
use piggyback_store::placement::PlacementCost;
use piggyback_store::topology::Topology;

fn main() {
    let nodes = nodes_from_args();
    let d = flickr_dataset(nodes, 42);
    print_dataset_banner(&d);
    println!("# Figure 7: normalized predicted throughput vs number of servers (with placement)");

    let inst = Instance::new(&d.graph, &d.rates);
    let schedulers: [&dyn Scheduler; 2] = [
        &ParallelNosy {
            max_iterations: 20,
            ..ParallelNosy::default()
        },
        &Hybrid,
    ];
    let [pc_pn, pc_ff] =
        schedulers.map(|s| PlacementCost::new(&d.graph, &d.rates, &s.schedule(&inst).schedule));

    print_header(&[
        "servers",
        "pn_norm_throughput",
        "ff_norm_throughput",
        "predicted_improvement_ratio",
    ]);
    // Average over placement seeds: random partitioning makes single-seed
    // small-system curves irregular (the paper notes the same).
    let seeds = [1u64, 2, 3];
    for servers in [1usize, 3, 10, 30, 100, 200, 300, 1000, 3000, 10000] {
        let (mut tp, mut tf) = (0.0, 0.0);
        for &s in &seeds {
            let p = Topology::hash(d.graph.node_count(), servers, s);
            tp += pc_pn.normalized_throughput(&p);
            tf += pc_ff.normalized_throughput(&p);
        }
        tp /= seeds.len() as f64;
        tf /= seeds.len() as f64;
        print_row(&[
            servers.to_string(),
            format!("{tp:.4}"),
            format!("{tf:.4}"),
            format!("{:.3}", tp / tf),
        ]);
    }
}
