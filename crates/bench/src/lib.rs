//! Shared harness for the figure-regeneration binaries and criterion
//! benchmarks.
//!
//! Every binary regenerates one figure of the paper's evaluation (§4) on
//! scaled-down synthetic stand-ins for the Flickr/Twitter crawls (see
//! DESIGN.md for the substitution rationale). Binaries accept an optional
//! first argument overriding the node count, e.g.
//!
//! ```text
//! cargo run --release -p piggyback-bench --bin fig4 -- 20000
//! ```

use piggyback_graph::{gen, stats, CsrGraph};
use piggyback_workload::Rates;

/// Default node count for figure runs: small enough for debug-ci, big
/// enough to show the trends. Override via the binary's CLI argument.
pub const DEFAULT_NODES: usize = 4000;

/// The reference read/write ratio of §4.1 (Silberstein et al.).
pub const REFERENCE_RW_RATIO: f64 = 5.0;

/// A named (graph, rates) pair for an experiment.
pub struct Dataset {
    /// Display name (`flickr` / `twitter`).
    pub name: &'static str,
    /// The social graph.
    pub graph: CsrGraph,
    /// The §4.1 log-degree workload at the reference r/w ratio.
    pub rates: Rates,
}

/// Builds the scaled-down Flickr stand-in.
pub fn flickr_dataset(nodes: usize, seed: u64) -> Dataset {
    let graph = gen::flickr_like(nodes, seed);
    let rates = Rates::log_degree(&graph, REFERENCE_RW_RATIO);
    Dataset {
        name: "flickr",
        graph,
        rates,
    }
}

/// Builds the scaled-down Twitter stand-in.
pub fn twitter_dataset(nodes: usize, seed: u64) -> Dataset {
    let graph = gen::twitter_like(nodes, seed);
    let rates = Rates::log_degree(&graph, REFERENCE_RW_RATIO);
    Dataset {
        name: "twitter",
        graph,
        rates,
    }
}

/// Both stand-ins at the same scale.
pub fn both_datasets(nodes: usize, seed: u64) -> Vec<Dataset> {
    vec![flickr_dataset(nodes, seed), twitter_dataset(nodes, seed)]
}

/// Parses the node-count CLI override (first positional argument).
pub fn nodes_from_args() -> usize {
    std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(DEFAULT_NODES)
}

/// Prints the dataset header every binary emits: sizes plus the structural
/// stats that justify the substitution.
pub fn print_dataset_banner(d: &Dataset) {
    let g = &d.graph;
    let cc = stats::sampled_clustering_coefficient(g, 300, 7);
    let rec = stats::reciprocity(g);
    println!(
        "# dataset={} nodes={} edges={} clustering~{:.3} reciprocity={:.3}",
        d.name,
        g.node_count(),
        g.edge_count(),
        cc,
        rec
    );
}

/// Formats a data row: tab-separated, stable column order — trivially
/// plottable with gnuplot or pandas.
pub fn print_row(cols: &[String]) {
    println!("{}", cols.join("\t"));
}

/// A `#`-prefixed header row naming the columns.
pub fn print_header(cols: &[&str]) {
    println!("# {}", cols.join("\t"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_build() {
        let f = flickr_dataset(500, 1);
        let t = twitter_dataset(500, 1);
        assert!(f.graph.edge_count() > 0);
        assert!(t.graph.edge_count() > f.graph.edge_count());
        assert_eq!(f.rates.len(), f.graph.node_count());
    }
}
