//! Criterion micro-benchmarks for the scheduling algorithms: FEEDINGFRENZY
//! (hybrid), PARALLELNOSY (threaded and MapReduce), and CHITCHAT, across
//! graph scales — the §4.2 "execution time per iteration" discussion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use piggyback_bench::flickr_dataset;
use piggyback_core::baseline::hybrid_schedule;
use piggyback_core::chitchat::ChitChat;
use piggyback_core::parallelnosy::ParallelNosy;
use piggyback_mapreduce::MapReduce;
use std::hint::black_box;

fn bench_hybrid(c: &mut Criterion) {
    let mut group = c.benchmark_group("hybrid_baseline");
    for nodes in [1000usize, 4000] {
        let d = flickr_dataset(nodes, 1);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &d, |b, d| {
            b.iter(|| black_box(hybrid_schedule(&d.graph, &d.rates)));
        });
    }
    group.finish();
}

fn bench_parallelnosy(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallelnosy");
    group.sample_size(10);
    for nodes in [1000usize, 4000] {
        let d = flickr_dataset(nodes, 1);
        let pn = ParallelNosy {
            max_iterations: 10,
            ..ParallelNosy::default()
        };
        group.bench_with_input(BenchmarkId::new("threaded", nodes), &d, |b, d| {
            b.iter(|| black_box(pn.run(&d.graph, &d.rates)));
        });
    }
    group.finish();
}

fn bench_parallelnosy_single_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallelnosy_one_iteration");
    group.sample_size(10);
    let d = flickr_dataset(4000, 1);
    let pn = ParallelNosy {
        max_iterations: 1,
        ..ParallelNosy::default()
    };
    group.bench_function("threaded", |b| {
        b.iter(|| black_box(pn.run(&d.graph, &d.rates)));
    });
    let engine = MapReduce::default();
    group.bench_function("mapreduce", |b| {
        b.iter(|| black_box(pn.run_on_mapreduce(&d.graph, &d.rates, &engine)));
    });
    group.finish();
}

fn bench_chitchat(c: &mut Criterion) {
    let mut group = c.benchmark_group("chitchat");
    group.sample_size(10);
    for nodes in [500usize, 1000] {
        let d = flickr_dataset(nodes, 1);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &d, |b, d| {
            b.iter(|| black_box(ChitChat::default().run(&d.graph, &d.rates)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hybrid,
    bench_parallelnosy,
    bench_parallelnosy_single_iteration,
    bench_chitchat
);
criterion_main!(benches);
