//! Criterion micro-benchmarks for the store prototype: request handling
//! under both schedules — the per-request cost behind Figure 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use piggyback_bench::flickr_dataset;
use piggyback_core::baseline::hybrid_schedule;
use piggyback_core::parallelnosy::ParallelNosy;
use piggyback_store::cluster::{Cluster, ClusterConfig};
use piggyback_store::tuple::EventTuple;
use piggyback_store::view::View;
use piggyback_workload::RequestTrace;
use std::hint::black_box;

fn bench_view_insert(c: &mut Criterion) {
    c.bench_function("view_insert_trimmed_128", |b| {
        b.iter(|| {
            let mut v = View::with_capacity(128);
            for i in 0..1000u64 {
                v.insert(EventTuple::new((i % 50) as u32, i, i));
            }
            black_box(v.len())
        });
    });
}

fn bench_request_mix(c: &mut Criterion) {
    let d = flickr_dataset(2000, 1);
    let ff = hybrid_schedule(&d.graph, &d.rates);
    let pn = ParallelNosy {
        max_iterations: 10,
        ..ParallelNosy::default()
    }
    .run(&d.graph, &d.rates)
    .schedule;
    let mut group = c.benchmark_group("simulate_10k_requests_200_servers");
    group.sample_size(10);
    for (name, sched) in [("hybrid", &ff), ("parallelnosy", &pn)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), sched, |b, sched| {
            b.iter(|| {
                let mut cluster = Cluster::new(
                    &d.graph,
                    sched,
                    ClusterConfig {
                        servers: 200,
                        ..Default::default()
                    },
                );
                let mut trace = RequestTrace::new(&d.rates, 9);
                black_box(cluster.simulate(&mut trace, 10_000))
            });
        });
    }
    group.finish();
}

fn bench_concurrent_cluster(c: &mut Criterion) {
    let d = flickr_dataset(1000, 1);
    let pn = ParallelNosy {
        max_iterations: 10,
        ..ParallelNosy::default()
    }
    .run(&d.graph, &d.rates)
    .schedule;
    let mut group = c.benchmark_group("concurrent_cluster");
    group.sample_size(10);
    group.bench_function("4_clients_x_1000_requests", |b| {
        b.iter(|| {
            let cluster = Cluster::new(
                &d.graph,
                &pn,
                ClusterConfig {
                    servers: 64,
                    ..Default::default()
                },
            );
            let (stats, _) = cluster.run_concurrent(&d.graph, &d.rates, 4, 1000, 4, 3);
            black_box(stats.requests)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_view_insert,
    bench_request_mix,
    bench_concurrent_cluster
);
criterion_main!(benches);
