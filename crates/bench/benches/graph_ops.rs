//! Criterion micro-benchmarks for the graph substrate: CSR construction,
//! edge-id lookup, neighbor iteration, generation, and sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use piggyback_graph::gen::{copying, flickr_like, CopyingConfig};
use piggyback_graph::sample::{bfs_sample, random_walk_sample};
use piggyback_graph::GraphBuilder;
use std::hint::black_box;

fn bench_csr_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("csr_build");
    for nodes in [1000usize, 10_000] {
        let g = flickr_like(nodes, 3);
        let edges: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (u, v)).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(edges.len()),
            &edges,
            |b, edges| {
                b.iter(|| {
                    let mut builder = GraphBuilder::with_capacity(edges.len());
                    for &(u, v) in edges {
                        builder.add_edge(u, v);
                    }
                    black_box(builder.build())
                });
            },
        );
    }
    group.finish();
}

fn bench_edge_lookup(c: &mut Criterion) {
    let g = flickr_like(4000, 3);
    let probes: Vec<(u32, u32)> = g
        .edges()
        .map(|(_, u, v)| (u, v))
        .step_by(7)
        .take(1024)
        .collect();
    c.bench_function("edge_id_lookup_1024", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(u, v) in &probes {
                acc = acc.wrapping_add(g.edge_id(u, v) as u64);
            }
            black_box(acc)
        });
    });
}

fn bench_neighbor_scan(c: &mut Criterion) {
    let g = flickr_like(4000, 3);
    c.bench_function("full_adjacency_scan", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for u in g.nodes() {
                for &v in g.out_neighbors(u) {
                    acc = acc.wrapping_add(v as u64);
                }
            }
            black_box(acc)
        });
    });
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.sample_size(10);
    group.bench_function("copying_10k_nodes", |b| {
        b.iter(|| {
            black_box(copying(CopyingConfig {
                nodes: 10_000,
                follows_per_node: 8,
                copy_prob: 0.9,
                seed: 5,
            }))
        });
    });
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let g = flickr_like(8000, 3);
    let target = g.edge_count() / 5;
    let mut group = c.benchmark_group("sampling");
    group.sample_size(10);
    group.bench_function("random_walk", |b| {
        b.iter(|| black_box(random_walk_sample(&g, target, 1)));
    });
    group.bench_function("bfs", |b| {
        b.iter(|| black_box(bfs_sample(&g, target, 1)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_csr_build,
    bench_edge_lookup,
    bench_neighbor_scan,
    bench_generation,
    bench_sampling
);
criterion_main!(benches);
