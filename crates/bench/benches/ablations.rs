//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * schedule representation: bitset vs `HashSet` membership;
//! * PARALLELNOSY lock scope: mutate-only vs conservative (§3.2-literal);
//! * cross-edge cap `b`: runtime effect of bounding hub-graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use piggyback_bench::flickr_dataset;
use piggyback_core::bitset::BitSet;
use piggyback_core::parallelnosy::ParallelNosy;
use std::collections::HashSet;
use std::hint::black_box;

fn bench_schedule_repr(c: &mut Criterion) {
    // Membership-heavy access pattern of the inner loops: m edges, ~50%
    // members, random probes.
    let m = 100_000u32;
    let members: Vec<u32> = (0..m).filter(|e| e % 2 == 0).collect();
    let probes: Vec<u32> = (0..m).step_by(3).collect();

    let mut bits = BitSet::new(m as usize);
    for &e in &members {
        bits.insert(e);
    }
    let mut hash: HashSet<u32> = HashSet::new();
    hash.extend(&members);

    let mut group = c.benchmark_group("schedule_membership");
    group.bench_function("bitset", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &e in &probes {
                hits += bits.contains(e) as usize;
            }
            black_box(hits)
        });
    });
    group.bench_function("std_hashset", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &e in &probes {
                hits += hash.contains(&e) as usize;
            }
            black_box(hits)
        });
    });
    group.finish();
}

fn bench_lock_scope(c: &mut Criterion) {
    let d = flickr_dataset(2000, 1);
    let mut group = c.benchmark_group("parallelnosy_lock_scope");
    group.sample_size(10);
    for (name, conservative) in [("mutate_only", false), ("conservative", true)] {
        let pn = ParallelNosy {
            max_iterations: 100,
            conservative_locks: conservative,
            ..ParallelNosy::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &pn, |b, pn| {
            b.iter(|| black_box(pn.run(&d.graph, &d.rates)));
        });
    }
    group.finish();
}

fn bench_cross_cap(c: &mut Criterion) {
    let d = flickr_dataset(3000, 1);
    let mut group = c.benchmark_group("parallelnosy_cross_cap");
    group.sample_size(10);
    for cap in [8usize, 64, 100_000] {
        let pn = ParallelNosy {
            max_iterations: 10,
            cross_cap: cap,
            ..ParallelNosy::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(cap), &pn, |b, pn| {
            b.iter(|| black_box(pn.run(&d.graph, &d.rates)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_schedule_repr,
    bench_lock_scope,
    bench_cross_cap
);
criterion_main!(benches);
