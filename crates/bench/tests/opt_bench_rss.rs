//! Regression test for `opt_bench`'s per-row memory accounting.
//!
//! Linux's `VmHWM` is a process-lifetime high-water mark, so rows measured
//! in a shared process all inherit the largest world's peak — exactly the
//! corruption an earlier committed `BENCH_opt.json` shows, where every row
//! after the 100k world reported an identical 305124 kB. The bench
//! re-execs itself per row (`--one ...`); this test pins the property that
//! matters: two rows with wildly different footprints report different
//! peaks, and the smaller world reports the smaller peak.

use std::process::Command;

fn child_rss(model: &str, nodes: usize) -> u64 {
    let out = Command::new(env!("CARGO_BIN_EXE_opt_bench"))
        .args(["--one", model, &nodes.to_string(), "hybrid", "1"])
        .output()
        .expect("spawn opt_bench child");
    assert!(
        out.status.success(),
        "child failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    text.lines()
        .find_map(|l| l.strip_prefix("peak_rss_kb="))
        .unwrap_or_else(|| panic!("no peak_rss_kb in child output:\n{text}"))
        .parse()
        .expect("peak_rss_kb parses")
}

#[test]
fn per_row_rss_tracks_each_rows_own_footprint() {
    // Order large-then-small: in a shared process the high-water mark
    // would make the later (small) row report the large row's peak.
    let large = child_rss("flickr", 60_000);
    let small = child_rss("flickr", 2_000);
    assert!(small > 0 && large > 0, "RSS unavailable: {small} / {large}");
    assert!(
        large > small,
        "60k-node row ({large} kB) should out-weigh the 2k row ({small} kB)"
    );
    // "Different footprints report different values", with real margin: a
    // 30x node-count gap must show up as at least a 1.2x RSS gap.
    assert!(
        large as f64 >= small as f64 * 1.2,
        "peaks suspiciously close: {large} kB vs {small} kB"
    );
}
