//! Property-based tests of the paper's formal claims, via `proptest`:
//!
//! * Theorem 1 — every schedule our algorithms emit serves each edge by
//!   push, pull, or a valid 2-hop hub (checked structurally).
//! * Lemma 1 — weighted peeling is a factor-2 approximation of the
//!   weighted densest subgraph.
//! * Cost-model identities: hybrid optimality among direct schedules,
//!   monotonicity under rate scaling.

use proptest::prelude::*;
use social_piggybacking::core::densest::peel_weighted;
use social_piggybacking::prelude::*;
use social_piggybacking::workload::Rates;

/// Random small digraph as an edge set over `n` nodes.
fn arb_graph(max_n: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n as u32, 0..n as u32).prop_filter("no self-loops", |(u, v)| u != v),
            0..n * 4,
        );
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new();
    b.reserve_nodes(n);
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallelnosy_always_feasible((n, edges) in arb_graph(40), ratio in 0.2f64..50.0) {
        let g = build(n, &edges);
        let r = Rates::log_degree(&g, ratio.max(0.2));
        let res = ParallelNosy::default().run(&g, &r);
        prop_assert!(validate_bounded_staleness(&g, &res.schedule).is_ok());
    }

    #[test]
    fn chitchat_always_feasible((n, edges) in arb_graph(30)) {
        let g = build(n, &edges);
        let r = Rates::log_degree(&g, 5.0);
        let res = ChitChat::default().run(&g, &r);
        prop_assert!(validate_bounded_staleness(&g, &res.schedule).is_ok());
    }

    #[test]
    fn piggybacking_never_loses_to_hybrid((n, edges) in arb_graph(40)) {
        let g = build(n, &edges);
        let r = Rates::log_degree(&g, 5.0);
        let ff = hybrid_schedule(&g, &r);
        let ff_cost = schedule_cost(&g, &r, &ff);
        let pn_cost = schedule_cost(&g, &r, &ParallelNosy::default().run(&g, &r).schedule);
        prop_assert!(pn_cost <= ff_cost + 1e-9);
    }

    #[test]
    fn hybrid_is_optimal_among_direct_schedules((n, edges) in arb_graph(30)) {
        // Any pure push/pull assignment costs at least the hybrid one.
        let g = build(n, &edges);
        let r = Rates::log_degree(&g, 5.0);
        let ff_cost = schedule_cost(&g, &r, &hybrid_schedule(&g, &r));
        let push_cost = schedule_cost(&g, &r, &push_all_schedule(&g));
        let pull_cost = schedule_cost(&g, &r, &pull_all_schedule(&g));
        prop_assert!(ff_cost <= push_cost + 1e-9);
        prop_assert!(ff_cost <= pull_cost + 1e-9);
    }

    #[test]
    fn peeling_respects_factor_two(
        n in 2usize..9,
        edge_bits in proptest::collection::vec(any::<bool>(), 36),
        weights in proptest::collection::vec(0.1f64..5.0, 9),
    ) {
        // Dense encoding of an undirected graph over n vertices.
        let mut edges = Vec::new();
        let mut k = 0;
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                if edge_bits[k % edge_bits.len()] {
                    edges.push((a, b));
                }
                k += 1;
            }
        }
        let weights = &weights[..n];
        let got = peel_weighted(n, &edges, weights, &vec![false; n]).density;
        // Brute-force optimum.
        let mut opt = 0.0f64;
        for mask in 1u32..(1 << n) {
            let e = edges
                .iter()
                .filter(|&&(a, b)| mask & (1 << a) != 0 && mask & (1 << b) != 0)
                .count();
            let w: f64 = (0..n).filter(|&v| mask & (1 << v) != 0).map(|v| weights[v]).sum();
            if w > 0.0 {
                opt = opt.max(e as f64 / w);
            }
        }
        prop_assert!(got * 2.0 + 1e-9 >= opt, "peel {got} below half of {opt}");
    }

    #[test]
    fn rate_scaling_scales_cost(scale in 0.1f64..10.0, (n, edges) in arb_graph(25)) {
        // c(H, L) is linear in the rates: scaling both rate vectors scales
        // any schedule's cost by the same factor.
        let g = build(n, &edges);
        let r1 = Rates::log_degree(&g, 5.0);
        let rp: Vec<f64> = r1.rp_slice().iter().map(|x| x * scale).collect();
        let rc: Vec<f64> = r1.rc_slice().iter().map(|x| x * scale).collect();
        let r2 = Rates::from_vecs(rp, rc);
        let s = hybrid_schedule(&g, &r1);
        let c1 = schedule_cost(&g, &r1, &s);
        let c2 = schedule_cost(&g, &r2, &s);
        prop_assert!((c2 - c1 * scale).abs() <= 1e-6 * c1.max(1.0));
    }

    #[test]
    fn covered_edges_record_real_triangles((n, edges) in arb_graph(35)) {
        let g = build(n, &edges);
        let r = Rates::log_degree(&g, 5.0);
        let s = ParallelNosy::default().run(&g, &r).schedule;
        for e in s.covered_edges() {
            let (u, v) = g.edge_endpoints(e);
            let w = s.hub_of(e);
            prop_assert!(g.has_edge(u, w), "missing push leg of covered edge");
            prop_assert!(g.has_edge(w, v), "missing pull leg of covered edge");
        }
    }
}
