//! Randomized property tests of the paper's formal claims:
//!
//! * Theorem 1 — every schedule our algorithms emit serves each edge by
//!   push, pull, or a valid 2-hop hub (checked structurally).
//! * Lemma 1 — weighted peeling is a factor-2 approximation of the
//!   weighted densest subgraph.
//! * Cost-model identities: hybrid optimality among direct schedules,
//!   monotonicity under rate scaling.
//!
//! Formerly `proptest`-based; the offline build vendors only a seeded RNG,
//! so each property now runs over a fixed number of deterministic random
//! cases (same invariants, reproducible failures by seed).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use social_piggybacking::core::densest::peel_weighted;
use social_piggybacking::prelude::*;
use social_piggybacking::workload::Rates;

const CASES: u64 = 48;

/// Random small digraph without self-loops over 2..max_n nodes.
fn arb_graph(rng: &mut StdRng, max_n: usize, edges_per_node: usize) -> CsrGraph {
    let n = rng.random_range(2..max_n);
    let count = rng.random_range(0..n * edges_per_node);
    let mut b = GraphBuilder::new();
    b.reserve_nodes(n);
    for _ in 0..count {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

#[test]
fn parallelnosy_always_feasible() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = arb_graph(&mut rng, 40, 4);
        let ratio = rng.random_range(0.2f64..50.0);
        let r = Rates::log_degree(&g, ratio.max(0.2));
        let res = ParallelNosy::default().run(&g, &r);
        assert!(
            validate_bounded_staleness(&g, &res.schedule).is_ok(),
            "seed {seed}"
        );
    }
}

#[test]
fn chitchat_always_feasible() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let g = arb_graph(&mut rng, 30, 4);
        let r = Rates::log_degree(&g, 5.0);
        let res = ChitChat::default().run(&g, &r);
        assert!(
            validate_bounded_staleness(&g, &res.schedule).is_ok(),
            "seed {seed}"
        );
    }
}

#[test]
fn piggybacking_never_loses_to_hybrid() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(200 + seed);
        let g = arb_graph(&mut rng, 40, 4);
        let r = Rates::log_degree(&g, 5.0);
        let ff = hybrid_schedule(&g, &r);
        let ff_cost = schedule_cost(&g, &r, &ff);
        let pn_cost = schedule_cost(&g, &r, &ParallelNosy::default().run(&g, &r).schedule);
        assert!(pn_cost <= ff_cost + 1e-9, "seed {seed}");
    }
}

#[test]
fn hybrid_is_optimal_among_direct_schedules() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(300 + seed);
        // Any pure push/pull assignment costs at least the hybrid one.
        let g = arb_graph(&mut rng, 30, 4);
        let r = Rates::log_degree(&g, 5.0);
        let ff_cost = schedule_cost(&g, &r, &hybrid_schedule(&g, &r));
        let push_cost = schedule_cost(&g, &r, &push_all_schedule(&g));
        let pull_cost = schedule_cost(&g, &r, &pull_all_schedule(&g));
        assert!(ff_cost <= push_cost + 1e-9, "seed {seed}");
        assert!(ff_cost <= pull_cost + 1e-9, "seed {seed}");
    }
}

#[test]
fn peeling_respects_factor_two() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(400 + seed);
        let n = rng.random_range(2..9usize);
        // Dense random undirected graph over n vertices, random weights.
        let mut edges = Vec::new();
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                if rng.random_bool(0.5) {
                    edges.push((a, b));
                }
            }
        }
        let weights: Vec<f64> = (0..n).map(|_| rng.random_range(0.1f64..5.0)).collect();
        let got = peel_weighted(n, &edges, &weights, &vec![false; n]).density;
        // Brute-force optimum.
        let mut opt = 0.0f64;
        for mask in 1u32..(1 << n) {
            let e = edges
                .iter()
                .filter(|&&(a, b)| mask & (1 << a) != 0 && mask & (1 << b) != 0)
                .count();
            let w: f64 = (0..n)
                .filter(|&v| mask & (1 << v) != 0)
                .map(|v| weights[v])
                .sum();
            if w > 0.0 {
                opt = opt.max(e as f64 / w);
            }
        }
        assert!(
            got * 2.0 + 1e-9 >= opt,
            "seed {seed}: peel {got} below half of {opt}"
        );
    }
}

#[test]
fn rate_scaling_scales_cost() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(500 + seed);
        let scale = rng.random_range(0.1f64..10.0);
        // c(H, L) is linear in the rates: scaling both rate vectors scales
        // any schedule's cost by the same factor.
        let g = arb_graph(&mut rng, 25, 4);
        let r1 = Rates::log_degree(&g, 5.0);
        let rp: Vec<f64> = r1.rp_slice().iter().map(|x| x * scale).collect();
        let rc: Vec<f64> = r1.rc_slice().iter().map(|x| x * scale).collect();
        let r2 = Rates::from_vecs(rp, rc);
        let s = hybrid_schedule(&g, &r1);
        let c1 = schedule_cost(&g, &r1, &s);
        let c2 = schedule_cost(&g, &r2, &s);
        assert!((c2 - c1 * scale).abs() <= 1e-6 * c1.max(1.0), "seed {seed}");
    }
}

#[test]
fn covered_edges_record_real_triangles() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(600 + seed);
        let g = arb_graph(&mut rng, 35, 4);
        let r = Rates::log_degree(&g, 5.0);
        let s = ParallelNosy::default().run(&g, &r).schedule;
        for e in s.covered_edges() {
            let (u, v) = g.edge_endpoints(e);
            let w = s.hub_of(e);
            assert!(g.has_edge(u, w), "seed {seed}: missing push leg");
            assert!(g.has_edge(w, v), "seed {seed}: missing pull leg");
        }
    }
}

#[test]
fn every_registered_scheduler_is_feasible_on_random_graphs() {
    // The trait-level counterpart of the per-algorithm feasibility tests
    // above: whatever the registry grows to contain must stay feasible.
    for seed in 0..CASES / 6 {
        let mut rng = StdRng::seed_from_u64(700 + seed);
        let g = arb_graph(&mut rng, 25, 3);
        let r = Rates::log_degree(&g, 5.0);
        let inst = Instance::new(&g, &r);
        for s in &scheduler::registry() {
            if !s.supports(&inst) {
                continue;
            }
            let out = s.schedule(&inst);
            assert!(
                validate_bounded_staleness(&g, &out.schedule).is_ok(),
                "seed {seed}, scheduler {}",
                s.name()
            );
        }
    }
}
