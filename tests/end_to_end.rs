//! Cross-crate integration tests: graph → workload → scheduling → store,
//! exercising the public facade the way an application would.

use social_piggybacking::core::validate::coverage_report;
use social_piggybacking::prelude::*;
use social_piggybacking::store::cluster::ClusterConfig;

fn world(nodes: usize, seed: u64) -> (CsrGraph, Rates) {
    let g = gen::flickr_like(nodes, seed);
    let r = Rates::log_degree(&g, 5.0);
    (g, r)
}

#[test]
fn full_pipeline_produces_feasible_improving_schedule() {
    let (g, r) = world(1500, 3);
    let ff = hybrid_schedule(&g, &r);
    let pn = ParallelNosy::default().run(&g, &r);
    validate_bounded_staleness(&g, &pn.schedule).unwrap();
    let imp = predicted_improvement(&g, &r, &pn.schedule, &ff);
    assert!(
        imp > 1.3,
        "piggybacking should clearly beat hybrid on a clustered graph: {imp}"
    );
    let report = coverage_report(&g, &pn.schedule);
    assert_eq!(report.unserved, 0);
    assert!(report.covered > 0, "no edges piggybacked");
}

#[test]
fn schedule_drives_store_and_events_flow() {
    let (g, r) = world(600, 9);
    let pn = ParallelNosy::default().run(&g, &r).schedule;
    // Delivery-semantics check: disable the top-k filter and view trimming
    // so no event can be legitimately aged out (hub views aggregate many
    // producers, so even a small-fan-in consumer's events can fall outside
    // a top-10 window).
    let mut cluster = Cluster::new(
        &g,
        &pn,
        ClusterConfig {
            servers: 16,
            top_k: usize::MAX,
            view_capacity: 0,
            ..Default::default()
        },
    );
    // Every user shares once, then every consumer must see all producers.
    for u in g.nodes() {
        cluster.share(u, 1000 + u as u64);
    }
    for v in g.nodes() {
        if g.in_degree(v) == 0 {
            continue;
        }
        let (events, _) = cluster.query(v);
        for &p in g.in_neighbors(v) {
            assert!(
                events.iter().any(|e| e.user == p),
                "user {v} missing event from followed producer {p}"
            );
        }
    }
}

#[test]
fn chitchat_and_parallelnosy_both_beat_hybrid_on_samples() {
    let (g, _r) = world(1200, 5);
    let sampled = sample::bfs_sample(&g, g.edge_count() / 4, 2);
    let sr = Rates::log_degree(&sampled.graph, 5.0);
    let ff = hybrid_schedule(&sampled.graph, &sr);
    let cc = ChitChat::default().run(&sampled.graph, &sr);
    let pn = ParallelNosy::default().run(&sampled.graph, &sr);
    validate_bounded_staleness(&sampled.graph, &cc.schedule).unwrap();
    validate_bounded_staleness(&sampled.graph, &pn.schedule).unwrap();
    let imp_cc = predicted_improvement(&sampled.graph, &sr, &cc.schedule, &ff);
    let imp_pn = predicted_improvement(&sampled.graph, &sr, &pn.schedule, &ff);
    assert!(imp_cc >= 1.0 && imp_pn >= 1.0);
    assert!(imp_cc > 1.2, "chitchat gain too small: {imp_cc}");
}

#[test]
fn incremental_updates_preserve_feasibility_and_bound() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let (g, r) = world(800, 7);
    let pn = ParallelNosy::default().run(&g, &r).schedule;
    let n = g.node_count();
    let mut inc = IncrementalScheduler::new(g, r.clone(), pn);
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..2000 {
        let u = rng.random_range(0..n) as u32;
        let v = rng.random_range(0..n) as u32;
        if u == v {
            continue;
        }
        if rng.random_bool(0.65) {
            inc.add_edge(u, v);
        } else {
            inc.remove_edge(u, v);
        }
    }
    inc.validate().unwrap();
    // Incremental schedule never exceeds all-hybrid on the current graph.
    let frozen = inc.freeze_graph();
    let ff = hybrid_schedule(&frozen, &r);
    assert!(inc.cost() <= schedule_cost(&frozen, &r, &ff) + 1e-6);
}

#[test]
fn mapreduce_and_threaded_runs_agree_via_facade() {
    let (g, r) = world(500, 13);
    let pn = ParallelNosy {
        max_iterations: 5,
        ..ParallelNosy::default()
    };
    let a = pn.run(&g, &r);
    let engine = social_piggybacking::mapreduce::MapReduce::new(3);
    let b = pn.run_on_mapreduce(&g, &r, &engine);
    assert_eq!(a.cost_history, b.cost_history);
}

#[test]
fn timed_trace_respects_bounded_staleness_semantically() {
    use social_piggybacking::core::staleness::{check_semantic_staleness, Action};
    let (g, r) = world(400, 31);
    let sched = ParallelNosy::default().run(&g, &r).schedule;
    // Build a timed workload and feed it to the delivery simulator.
    let mut trace = RequestTrace::new(&r, 8);
    let actions: Vec<Action> = trace
        .timed(3_000, 7)
        .into_iter()
        .map(|tr| match tr.request {
            RequestKind::Share(u) => Action::Post {
                user: u,
                time: tr.time,
            },
            RequestKind::Query(u) => Action::Query {
                user: u,
                time: tr.time,
            },
        })
        .collect();
    check_semantic_staleness(&g, &sched, &actions, 3)
        .expect("schedule must satisfy bounded staleness on a realistic trace");
}

#[test]
fn placement_model_matches_simulated_messages() {
    // The analytic placement-aware cost must agree with the message counts
    // the simulator observes (law of large numbers over a long trace).
    let (g, r) = world(400, 21);
    let pn = ParallelNosy::default().run(&g, &r).schedule;
    let servers = 32;
    let pc = PlacementCost::new(&g, &r, &pn);
    let placement = Topology::hash(g.node_count(), servers, 0);
    let analytic_msgs_per_request = {
        let total_rate: f64 = (0..g.node_count())
            .map(|u| r.rp(u as u32) + r.rc(u as u32))
            .sum();
        pc.cost(&placement) / total_rate
    };
    let mut cluster = Cluster::new(
        &g,
        &pn,
        ClusterConfig {
            servers,
            placement_seed: 0,
            ..Default::default()
        },
    );
    let mut trace = RequestTrace::new(&r, 17);
    let stats = cluster.simulate(&mut trace, 60_000);
    let simulated = stats.messages_per_request();
    let rel_err = (simulated - analytic_msgs_per_request).abs() / analytic_msgs_per_request;
    assert!(
        rel_err < 0.03,
        "analytic {analytic_msgs_per_request:.3} vs simulated {simulated:.3}"
    );
}
