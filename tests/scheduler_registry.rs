//! Coverage tests for the `Scheduler` registry: every registered algorithm
//! must produce a feasible schedule through the uniform trait API, and the
//! piggybacking algorithms must never lose to the hybrid baseline under
//! the §2.1 cost model.

use social_piggybacking::prelude::*;

fn world() -> (CsrGraph, Rates) {
    let g = gen::flickr_like(800, 17);
    let r = Rates::log_degree(&g, 5.0);
    (g, r)
}

#[test]
fn every_registered_scheduler_produces_a_feasible_schedule() {
    let (g, r) = world();
    let inst = Instance::new(&g, &r);
    let mut ran = 0usize;
    for s in &scheduler::registry() {
        if !s.supports(&inst) {
            // Only the exact solver may bow out, and this instance is far
            // beyond its enumeration bound.
            assert_eq!(s.name(), "exact", "{} refused a normal instance", s.name());
            continue;
        }
        let out = s.schedule(&inst);
        validate_bounded_staleness(&g, &out.schedule)
            .unwrap_or_else(|e| panic!("{}: infeasible schedule: {e}", s.name()));
        assert!(
            out.stats.cost > 0.0,
            "{}: zero cost on a real graph",
            s.name()
        );
        ran += 1;
    }
    assert!(ran >= 7, "registry shrank: only {ran} schedulers ran");
}

#[test]
fn piggybacking_schedulers_never_lose_to_hybrid() {
    let (g, r) = world();
    let inst = Instance::new(&g, &r);
    let ff = scheduler::by_name("hybrid").unwrap().schedule(&inst);
    for name in [
        "chitchat",
        "parallelnosy",
        "parallelnosy-mr",
        "sharded-chitchat",
    ] {
        let s = scheduler::by_name(name).unwrap();
        let out = s.schedule(&inst);
        let imp = predicted_improvement(&g, &r, &out.schedule, &ff.schedule);
        assert!(imp >= 1.0, "{name}: improvement {imp} < 1 vs hybrid");
    }
}

#[test]
fn clustered_graphs_yield_real_gains_through_the_trait() {
    // The headline claim, via the uniform API only: on a clustered graph
    // the piggybacking algorithms clearly beat the baseline.
    let (g, r) = world();
    let inst = Instance::new(&g, &r);
    let ff_cost = scheduler::by_name("ff").unwrap().schedule(&inst).stats.cost;
    for name in ["chitchat", "parallelnosy"] {
        let out = scheduler::by_name(name).unwrap().schedule(&inst);
        let imp = ff_cost / out.stats.cost;
        assert!(imp > 1.3, "{name}: expected clear gains, got {imp:.3}x");
    }
}

#[test]
fn stats_are_populated_per_algorithm_family() {
    let (g, r) = world();
    let inst = Instance::new(&g, &r);
    let cc = scheduler::by_name("chitchat").unwrap().schedule(&inst);
    assert!(cc.stats.oracle_calls > 0, "chitchat reports oracle calls");
    let pn = scheduler::by_name("parallelnosy").unwrap().schedule(&inst);
    assert!(pn.stats.iterations > 0, "parallelnosy reports iterations");
    assert!(pn.stats.hubs_applied > 0, "parallelnosy reports hubs");
    for out in [&cc, &pn] {
        assert!(out.stats.wall_time.as_nanos() > 0, "wall time recorded");
    }
}
