//! A miniature event-stream ("news feed") service: the store prototype of
//! §4.3 running end-to-end with a piggybacking schedule.
//!
//! The social graph is a celebrity cluster: a group of artists, a curator
//! who follows all of them, and fans who follow the curator *and* the
//! artists. The curator's view is a natural hub: artists push into it once,
//! every fan pulls it once, and all artist→fan edges ride along for free.
//!
//! Demonstrates: building the sharded store, sharing events, assembling
//! feeds, and comparing data-store message counts between schedules — the
//! quantity that determines real throughput once the store saturates.
//!
//! ```text
//! cargo run --release --example feed_service
//! ```

use social_piggybacking::prelude::*;
use social_piggybacking::store::cluster::ClusterConfig;

const ARTISTS: u32 = 10;
const CURATOR: u32 = ARTISTS; // node 10
const FANS: std::ops::Range<u32> = 11..41;

fn main() {
    let mut b = GraphBuilder::new();
    for artist in 0..ARTISTS {
        b.add_edge(artist, CURATOR); // curator follows every artist
        for fan in FANS {
            b.add_edge(artist, fan); // fans follow every artist...
        }
    }
    for fan in FANS {
        b.add_edge(CURATOR, fan); // ...and the curator
    }
    let graph = b.build();
    // Everyone produces at rate 1 and reads their feed at rate 3.
    let rates = Rates::uniform(graph.node_count(), 1.0, 3.0);

    let inst = Instance::new(&graph, &rates);
    let schedule = ParallelNosy::default().schedule(&inst).schedule;
    validate_bounded_staleness(&graph, &schedule).expect("feasible");
    let covered = schedule.covered_edges().count();
    println!(
        "schedule: {covered} of {} edges piggybacked through hubs",
        graph.edge_count()
    );
    assert!(covered > 0, "the curator hub should be exploited");

    // A 4-server store cluster running that schedule.
    let mut cluster = Cluster::new(
        &graph,
        &schedule,
        ClusterConfig {
            servers: 4,
            top_k: 10,
            ..Default::default()
        },
    );

    // Three artists share events; the curator shares one too.
    for (event_id, artist) in [(1u64, 0u32), (2, 1), (3, 2)] {
        cluster.share(artist, event_id);
    }
    cluster.share(CURATOR, 100);

    // A fan assembles their feed: artist events must arrive even though
    // most artist→fan edges are never pushed or pulled directly.
    let billie = 11;
    let (feed, messages) = cluster.query(billie);
    println!("fan {billie}'s feed ({messages} store messages):");
    for e in &feed {
        println!(
            "  event {} from user {} at t={}",
            e.event_id, e.user, e.timestamp
        );
    }
    assert!(
        feed.iter().filter(|e| e.user < ARTISTS).count() >= 3,
        "fan must see the artists' events"
    );

    // Message accounting: replay one trace under both schedules.
    let ff = Hybrid.schedule(&inst).schedule;
    let cfg = ClusterConfig {
        servers: 64,
        ..Default::default()
    };
    let mut t1 = RequestTrace::new(&rates, 7);
    let mut t2 = RequestTrace::new(&rates, 7);
    let pn_stats = Cluster::new(&graph, &schedule, cfg).simulate(&mut t1, 50_000);
    let ff_stats = Cluster::new(&graph, &ff, cfg).simulate(&mut t2, 50_000);
    println!(
        "50k requests on 64 servers: piggybacking {:.3} msgs/req vs hybrid {:.3} msgs/req",
        pn_stats.messages_per_request(),
        ff_stats.messages_per_request()
    );
    println!(
        "=> {:.1}% fewer data-store messages",
        100.0 * (1.0 - pn_stats.messages as f64 / ff_stats.messages as f64)
    );
}
