//! Capacity planning: how many data-store servers does a feed workload
//! need, and when does schedule choice start to matter?
//!
//! Uses the placement-aware cost model (§4.3, Figure 7): with few servers,
//! batching makes schedules interchangeable; past a crossover, social
//! piggybacking serves the same workload with markedly fewer messages —
//! i.e., fewer servers for the same traffic.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use social_piggybacking::prelude::*;

fn main() {
    let graph = gen::twitter_like(3_000, 7);
    let rates = Rates::log_degree(&graph, 5.0);
    println!(
        "workload: {} users, {} subscriptions, read/write ratio {:.1}",
        graph.node_count(),
        graph.edge_count(),
        rates.read_write_ratio()
    );

    let inst = Instance::new(&graph, &rates);
    let schedulers: [&dyn Scheduler; 2] = [&Hybrid, &ParallelNosy::default()];
    let [cost_ff, cost_pn] =
        schedulers.map(|s| PlacementCost::new(&graph, &rates, &s.schedule(&inst).schedule));

    println!("\nservers  hybrid msg-rate  piggyback msg-rate  savings");
    let mut crossover: Option<usize> = None;
    for servers in [1usize, 8, 32, 128, 512, 2048, 8192] {
        let placement = Topology::hash(graph.node_count(), servers, 1);
        let a = cost_ff.cost(&placement);
        let b = cost_pn.cost(&placement);
        if b < a && crossover.is_none() {
            crossover = Some(servers);
        }
        println!(
            "{servers:>7}  {a:>15.0}  {b:>18.0}  {:>6.1}%",
            100.0 * (1.0 - b / a)
        );
    }
    match crossover {
        Some(s) => println!(
            "\npiggybacking starts paying off somewhere at or below {s} servers; \
             beyond it, the same fleet sustains up to {:.0}% more requests",
            100.0
                * (cost_ff.cost(&Topology::hash(graph.node_count(), 8192, 1))
                    / cost_pn.cost(&Topology::hash(graph.node_count(), 8192, 1))
                    - 1.0)
        ),
        None => println!("\nthis workload never crosses over — stay on hybrid"),
    }

    // Load balance check before signing off the plan (Figure 8).
    let placement = Topology::hash(graph.node_count(), 512, 1);
    let (mean, var) = cost_pn.load_balance(&placement);
    println!(
        "load balance @512 servers: mean share {:.4}, σ {:.5}",
        mean,
        var.sqrt()
    );
}
