//! Quickstart: compute a piggybacking schedule for a social graph and
//! compare it against the state-of-the-art hybrid baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use social_piggybacking::prelude::*;

fn main() {
    // 1. A social graph. Here: a synthetic Flickr-like graph (power-law
    //    follower counts, high clustering — the structure piggybacking
    //    exploits). Real edge lists load via `graph::io::load_edge_list`.
    let graph = gen::flickr_like(2_000, 42);
    println!(
        "graph: {} users, {} follow edges",
        graph.node_count(),
        graph.edge_count()
    );

    // 2. A workload: production/consumption rates per user. The log-degree
    //    model of §4.1 with the reference read/write ratio of 5. Together
    //    with the graph this is one DISSEMINATION instance.
    let rates = Rates::log_degree(&graph, 5.0);
    let inst = Instance::new(&graph, &rates);

    // 3. Baseline: the hybrid schedule of Silberstein et al. — per edge,
    //    the cheaper of push and pull. Every optimizer implements the same
    //    `Scheduler` trait, so they are all invoked identically.
    let ff = Hybrid.schedule(&inst);
    println!("hybrid baseline cost: {:.1}", ff.stats.cost);

    // 4. Social piggybacking with PARALLELNOSY: serve edges through common
    //    contacts ("hubs") so many edges ride a single push + pull.
    let result = ParallelNosy::default().schedule(&inst);
    let pn = &result.schedule;
    println!(
        "parallelnosy cost:    {:.1}  ({} iterations, {} hubs, {:.0} ms)",
        result.stats.cost,
        result.stats.iterations,
        result.stats.hubs_applied,
        result.stats.wall_time.as_secs_f64() * 1e3
    );

    // 5. Every schedule must satisfy bounded staleness (Theorem 1): each
    //    edge is pushed, pulled, or covered through a valid hub.
    validate_bounded_staleness(&graph, pn).expect("schedule must be feasible");

    // 6. The headline number: predicted throughput improvement.
    let improvement = predicted_improvement(&graph, &rates, pn, &ff.schedule);
    println!("predicted improvement over hybrid: {improvement:.2}x");

    // 7. Inspect how edges are served.
    let report = piggyback_core::validate::coverage_report(&graph, pn);
    println!(
        "edges: {} push, {} pull, {} push+pull, {} piggybacked (free), {} unserved",
        report.push, report.pull, report.both, report.covered, report.unserved
    );

    // 8. Or sweep the whole algorithm registry — `piggyback compare` is
    //    exactly this loop.
    println!("\nall registered schedulers on this instance:");
    for s in &scheduler::registry() {
        if !s.supports(&inst) {
            continue; // the exact solver bows out of large instances
        }
        let out = s.schedule(&inst);
        println!("  {:<18} cost {:>10.1}", s.name(), out.stats.cost);
    }
}
