//! Quickstart: compute a piggybacking schedule for a social graph and
//! compare it against the state-of-the-art hybrid baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use social_piggybacking::prelude::*;

fn main() {
    // 1. A social graph. Here: a synthetic Flickr-like graph (power-law
    //    follower counts, high clustering — the structure piggybacking
    //    exploits). Real edge lists load via `graph::io::load_edge_list`.
    let graph = gen::flickr_like(2_000, 42);
    println!(
        "graph: {} users, {} follow edges",
        graph.node_count(),
        graph.edge_count()
    );

    // 2. A workload: production/consumption rates per user. The log-degree
    //    model of §4.1 with the reference read/write ratio of 5.
    let rates = Rates::log_degree(&graph, 5.0);

    // 3. Baseline: the hybrid schedule of Silberstein et al. — per edge,
    //    the cheaper of push and pull.
    let ff = hybrid_schedule(&graph, &rates);
    println!(
        "hybrid baseline cost: {:.1}",
        schedule_cost(&graph, &rates, &ff)
    );

    // 4. Social piggybacking with PARALLELNOSY: serve edges through common
    //    contacts ("hubs") so many edges ride a single push + pull.
    let result = ParallelNosy::default().run(&graph, &rates);
    let pn = &result.schedule;
    println!(
        "parallelnosy cost:    {:.1}  ({} iterations, {} hubs)",
        schedule_cost(&graph, &rates, pn),
        result.iterations,
        result.hubs_applied
    );

    // 5. Every schedule must satisfy bounded staleness (Theorem 1): each
    //    edge is pushed, pulled, or covered through a valid hub.
    validate_bounded_staleness(&graph, pn).expect("schedule must be feasible");

    // 6. The headline number: predicted throughput improvement.
    let improvement = predicted_improvement(&graph, &rates, pn, &ff);
    println!("predicted improvement over hybrid: {improvement:.2}x");

    // 7. Inspect how edges are served.
    let report = piggyback_core::validate::coverage_report(&graph, pn);
    println!(
        "edges: {} push, {} pull, {} push+pull, {} piggybacked (free), {} unserved",
        report.push, report.pull, report.both, report.covered, report.unserved
    );
}
