//! Living with a changing social graph: incremental schedule maintenance
//! (§3.3) and deciding when to re-optimize.
//!
//! New follows are served directly; unfollows re-serve any edges that were
//! piggybacking on them. The schedule stays feasible throughout, its
//! quality degrades slowly, and a periodic re-optimization recovers it.
//!
//! ```text
//! cargo run --release --example graph_churn
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use social_piggybacking::prelude::*;

fn main() {
    let graph = gen::flickr_like(2_000, 11);
    let rates = Rates::log_degree(&graph, 5.0);
    let n = graph.node_count();

    // Optimize once...
    let pn: &dyn Scheduler = &ParallelNosy::default();
    let schedule = pn.schedule(&Instance::new(&graph, &rates)).schedule;
    let mut inc = IncrementalScheduler::new(graph.clone(), rates.clone(), schedule);
    let optimized_cost = inc.cost();
    println!("optimized cost: {optimized_cost:.1}");

    // ... then churn: bursts of follows and unfollows.
    let mut rng = StdRng::seed_from_u64(3);
    for burst in 1..=5 {
        for _ in 0..2_000 {
            let u = rng.random_range(0..n) as u32;
            let v = rng.random_range(0..n) as u32;
            if u == v {
                continue;
            }
            if rng.random_bool(0.7) {
                inc.add_edge(u, v);
            } else {
                inc.remove_edge(u, v);
            }
        }
        inc.validate()
            .expect("incremental schedule must stay feasible");
        println!(
            "after burst {burst}: cost {:.1} ({} edges, {} added since snapshot)",
            inc.cost(),
            inc.graph().edge_count(),
            inc.added_count()
        );
    }

    // Degradation check: compare against re-optimizing from scratch.
    let frozen = inc.freeze_graph();
    let frozen_inst = Instance::new(&frozen, &rates);
    let reopt_cost = pn.schedule(&frozen_inst).stats.cost;
    let ff_cost = Hybrid.schedule(&frozen_inst).stats.cost;
    println!(
        "\ncurrent graph: incremental {:.1} | re-optimized {:.1} | hybrid {:.1}",
        inc.cost(),
        reopt_cost,
        ff_cost
    );
    println!(
        "incremental kept {:.0}% of the re-optimized advantage over hybrid",
        100.0 * (ff_cost - inc.cost()) / (ff_cost - reopt_cost)
    );
    println!("rule of thumb from the paper: re-optimize after ~1/3 of the graph has churned");
}
