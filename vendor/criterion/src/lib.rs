//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate keeps the workspace's benchmark sources compiling and *running*
//! with the same API (`criterion_group!`, `criterion_main!`,
//! `benchmark_group`, `bench_with_input`, `Bencher::iter`). Measurement is
//! deliberately simple — fixed warm-up, `sample_size` timed samples,
//! median/mean/min reported on stdout — with none of upstream's outlier
//! analysis or HTML reports. Numbers are comparable across runs on the
//! same machine, which is all the ROADMAP's bench workflows need.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter as the label.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: a few warm-up calls, then `sample_size` timed
    /// samples of one call each.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            std_black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{name:<50} median {:>12?}  mean {:>12?}  min {:>12?}  ({} samples)",
        median,
        mean,
        min,
        sorted.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_one(&self, label: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, label), &b.samples);
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        self.run_one(&id.to_string(), f);
        self
    }

    /// Benchmarks a closure receiving a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        self.run_one(&id.label, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; ours are streamed).
    pub fn finish(self) {}
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone closure.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(name, &b.samples);
        self
    }
}

/// Declares a runnable group function from benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group functions, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_apis_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with", 4), &4u32, |b, &n| b.iter(|| n * 2));
        group.finish();
        c.bench_function("top", |b| b.iter(|| black_box(3)));
    }

    criterion_group!(test_group, smoke);

    fn smoke(c: &mut Criterion) {
        c.bench_function("smoke", |b| b.iter(|| ()));
    }

    #[test]
    fn macro_generated_group_runs() {
        test_group();
    }
}
