//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) slice of the rand 0.9 API the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded with
//!   SplitMix64 (`seed_from_u64`). The stream differs from upstream
//!   `StdRng`, which is fine: every consumer in this workspace treats seeds
//!   as opaque determinism handles, not as cross-crate reproducibility.
//! * [`Rng::random_range`] over integer and float ranges, and
//!   [`Rng::random_bool`].
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (only the `u64` convenience constructor is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32
    }
}

/// Maps 64 random bits to a double in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// Uniform `f64` in `[0, 1)`.
    fn random(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{RngCore, SampleRange};

    /// Slice shuffling (the only `seq` API the workspace uses).
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0u64..=5);
            assert!(y <= 5);
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
