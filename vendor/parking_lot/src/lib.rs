//! Offline stand-in for `parking_lot`: a `Mutex` and an `RwLock` with
//! parking_lot's poison-free API (`lock()`/`read()`/`write()` return the
//! guard directly), implemented over the std primitives. A poisoned std
//! lock — a holder panicked — yields the inner data anyway, matching
//! parking_lot semantics.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// Mutual exclusion with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard; the lock is released on drop.
pub struct MutexGuard<'a, T: ?Sized>(StdGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates an unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// RAII shared-read guard; the lock is released on drop.
pub struct RwLockReadGuard<'a, T: ?Sized>(StdReadGuard<'a, T>);

/// RAII exclusive-write guard; the lock is released on drop.
pub struct RwLockWriteGuard<'a, T: ?Sized>(StdWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates an unlocked reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Blocks until shared read access is acquired.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Blocks until exclusive write access is acquired.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn rwlock_read_write_roundtrip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn rwlock_many_concurrent_readers() {
        let l = std::sync::Arc::new(RwLock::new(1u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let l = l.clone();
                std::thread::spawn(move || (0..500).map(|_| *l.read()).sum::<u64>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 500);
        }
    }

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
