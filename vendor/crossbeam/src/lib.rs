//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io. The workspace uses two
//! pieces of crossbeam — [`scope`] and [`channel`] — both of which std now
//! covers: scoped threads landed in Rust 1.63 (`std::thread::scope`) and
//! `std::sync::mpsc` channels have been `Sync` senders since 1.72. This
//! crate adapts the crossbeam call-site signatures onto those std
//! primitives so the algorithm code reads exactly like the upstream API.

use std::any::Any;

/// Scoped-thread handle mirroring `crossbeam::thread::Scope`.
///
/// Wraps `std::thread::Scope`; spawned closures receive a `&Scope` so they
/// can spawn further scoped threads, as with upstream crossbeam.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Join handle mirroring `crossbeam::thread::ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread and returns its result (`Err` on panic).
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope itself,
    /// matching crossbeam's signature (`|_| ...` at call sites that do not
    /// nest spawns).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Runs `f` with a thread scope; all spawned threads are joined before this
/// returns. Always `Ok`: a panicking child propagates on join (or at scope
/// exit), as with `std::thread::scope`.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

pub mod channel {
    //! Multi-producer channels with the crossbeam surface.
    //!
    //! Implemented directly over a `Mutex<VecDeque>` + condvar pair rather
    //! than `std::sync::mpsc`: the std channel heap-allocates a queue node
    //! per `send`, which on the store's serving hot path means several
    //! allocations per operation just to move requests between threads.
    //! The ring buffer reuses its allocation — a warmed-up channel sends
    //! and receives with zero heap traffic — and wake-ups are skipped
    //! entirely when no thread is parked on the other side.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
        recv_waiting: usize,
        send_waiting: usize,
        /// Rendezvous (cap 0) only: ticket of the value currently queued
        /// for hand-off, 0 when none. Lets the owning sender distinguish
        /// "my value was taken" from "another sender queued a new value",
        /// so success/failure is never misattributed between senders.
        handoff: u64,
        next_ticket: u64,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        /// `None` = unbounded.
        cap: Option<usize>,
    }

    /// Sending half; clonable and usable from many threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            let wake = inner.senders == 0 && inner.recv_waiting > 0;
            drop(inner);
            if wake {
                self.shared.not_empty.notify_all();
            }
        }
    }

    /// Error returned when every receiver is gone.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by `recv` when every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by the timed receives: either the deadline passed
    /// with the queue still empty, or every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline elapsed before a value arrived.
        Timeout,
        /// Every sender dropped and the queue is drained.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Sends a value, blocking on a full bounded channel. A capacity of
        /// zero is a rendezvous: `send` returns only once a receiver has
        /// taken the value.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            if let Some(cap) = self.shared.cap {
                // Rendezvous admits one in-flight value at a time.
                let slots = cap.max(1);
                while inner.queue.len() >= slots && inner.receiver_alive {
                    inner.send_waiting += 1;
                    inner = self.shared.not_full.wait(inner).unwrap();
                    inner.send_waiting -= 1;
                }
            }
            if !inner.receiver_alive {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            if self.shared.cap == Some(0) {
                // Hand-off: wait until a receiver has taken *this* value
                // (tracked by ticket — the queue may already hold a later
                // sender's value by the time this sender wakes up).
                inner.next_ticket += 1;
                let ticket = inner.next_ticket;
                inner.handoff = ticket;
                if inner.recv_waiting > 0 {
                    self.shared.not_empty.notify_one();
                }
                while inner.handoff == ticket && inner.receiver_alive {
                    inner.send_waiting += 1;
                    inner = self.shared.not_full.wait(inner).unwrap();
                    inner.send_waiting -= 1;
                }
                if inner.handoff == ticket {
                    // Receiver died with this value still queued.
                    inner.handoff = 0;
                    let unclaimed = inner.queue.pop_back().expect("hand-off value present");
                    return Err(SendError(unclaimed));
                }
            } else {
                let wake = inner.recv_waiting > 0;
                drop(inner);
                if wake {
                    self.shared.not_empty.notify_one();
                }
            }
            Ok(())
        }

        /// Messages currently queued (crossbeam's `Sender::len`). A
        /// point-in-time reading — the observability layer samples it for
        /// queue-depth gauges; never use it for flow-control decisions.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.receiver_alive = false;
            let wake = inner.send_waiting > 0;
            drop(inner);
            if wake {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Completes a successful pop while still holding the lock: clears
        /// the rendezvous hand-off marker and wakes blocked senders.
        fn complete_pop(&self, mut inner: std::sync::MutexGuard<'_, Inner<T>>, value: T) -> T {
            inner.handoff = 0; // rendezvous hand-off complete
            let wake = inner.send_waiting > 0;
            drop(inner);
            if wake {
                if self.shared.cap == Some(0) {
                    // Rendezvous: both admission-waiting and
                    // hand-off-waiting senders park on not_full; a
                    // single wake could reach the wrong one and
                    // strand the hand-off waiter forever.
                    self.shared.not_full.notify_all();
                } else {
                    self.shared.not_full.notify_one();
                }
            }
            value
        }

        /// Blocks for the next value; `Err` once the channel is closed and
        /// drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(self.complete_pop(inner, value));
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner.recv_waiting += 1;
                inner = self.shared.not_empty.wait(inner).unwrap();
                inner.recv_waiting -= 1;
            }
        }

        /// Waits for the next value at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Instant::now() + timeout)
        }

        /// Waits for the next value until `deadline`. Re-checks the queue
        /// on every wake-up, so spurious condvar wakes never produce a
        /// premature `Timeout`.
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(self.complete_pop(inner, value));
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let wait = deadline.saturating_duration_since(Instant::now());
                if wait.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                inner.recv_waiting += 1;
                let (guard, _) = self.shared.not_empty.wait_timeout(inner, wait).unwrap();
                inner = guard;
                inner.recv_waiting -= 1;
            }
        }

        /// Messages currently queued (crossbeam's `Receiver::len`).
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                // Bounded queues pre-size to capacity; unbounded ones grow
                // to their high-water mark and then stay allocation-free.
                queue: cap.map_or_else(VecDeque::new, VecDeque::with_capacity),
                senders: 1,
                receiver_alive: true,
                recv_waiting: 0,
                send_waiting: 0,
                handoff: 0,
                next_ticket: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Channel holding at most `cap` in-flight values; `cap == 0` is a
    /// rendezvous channel (every `send` blocks for its hand-off).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded};

    #[test]
    fn channel_roundtrip_multi_producer() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            s.spawn(move || {
                for i in 100..200 {
                    tx2.send(i).unwrap();
                }
            });
        });
        let mut got: Vec<u32> = (0..200).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..200).collect::<Vec<_>>());
        // All senders gone and the queue drained: recv reports closure.
        assert!(rx.recv().is_err());
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        std::thread::scope(|s| {
            let t = s.spawn(move || {
                tx.send(3).unwrap(); // blocks until the receiver drains
                drop(tx);
            });
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.recv().unwrap(), 3);
            t.join().unwrap();
        });
    }

    #[test]
    fn rendezvous_hands_off() {
        let (tx, rx) = bounded::<u32>(0);
        std::thread::scope(|s| {
            let t = s.spawn(move || {
                tx.send(7).unwrap(); // blocks until the recv below
                tx.send(8).unwrap();
            });
            assert_eq!(rx.recv().unwrap(), 7);
            assert_eq!(rx.recv().unwrap(), 8);
            t.join().unwrap();
        });
    }

    #[test]
    fn rendezvous_with_competing_senders_never_strands_one() {
        // Two producers hammer one rendezvous channel; a wrong-waiter wake
        // (admission vs hand-off) would strand a sender and hang the test.
        let (tx, rx) = bounded::<u32>(0);
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..500 {
                    tx.send(i).unwrap();
                }
            });
            s.spawn(move || {
                for i in 500..1000 {
                    tx2.send(i).unwrap();
                }
            });
            let mut got: Vec<u32> = (0..1000).map(|_| rx.recv().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, (0..1000).collect::<Vec<_>>());
        });
    }

    #[test]
    fn len_reports_queued_messages() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(tx.len(), 0);
        assert!(tx.is_empty() && rx.is_empty());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.len(), 2);
        rx.recv().unwrap();
        assert_eq!(rx.len(), 1);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use super::channel::RecvTimeoutError;
        use std::time::{Duration, Instant};
        let (tx, rx) = unbounded::<u32>();
        let t0 = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= Duration::from_millis(20));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
        assert_eq!(
            rx.recv_deadline(Instant::now() + Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_deadline_wakes_on_late_send() {
        use std::time::{Duration, Instant};
        let (tx, rx) = bounded::<u32>(4);
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                tx.send(42).unwrap();
            });
            let got = rx.recv_deadline(Instant::now() + Duration::from_secs(5));
            assert_eq!(got, Ok(42));
        });
    }

    #[test]
    fn send_fails_once_receiver_is_gone() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn dropping_receiver_unblocks_full_senders() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        std::thread::scope(|s| {
            let t = s.spawn(move || tx.send(2)); // parked on the full queue
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(rx);
            assert!(t.join().unwrap().is_err(), "send must fail, not hang");
        });
    }

    #[test]
    fn scope_joins_and_collects() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_compiles_and_runs() {
        let out = super::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 7);
    }

    #[test]
    fn channels_roundtrip() {
        use super::channel::{bounded, unbounded};
        let (tx, rx) = unbounded();
        let (btx, brx) = bounded(1);
        std::thread::spawn(move || {
            tx.send(5u32).unwrap();
            btx.send(6u32).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 5);
        assert_eq!(brx.recv().unwrap(), 6);
        assert!(rx.recv().is_err(), "closed channel must error");
    }
}
