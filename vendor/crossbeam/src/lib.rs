//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io. The workspace uses two
//! pieces of crossbeam — [`scope`] and [`channel`] — both of which std now
//! covers: scoped threads landed in Rust 1.63 (`std::thread::scope`) and
//! `std::sync::mpsc` channels have been `Sync` senders since 1.72. This
//! crate adapts the crossbeam call-site signatures onto those std
//! primitives so the algorithm code reads exactly like the upstream API.

use std::any::Any;

/// Scoped-thread handle mirroring `crossbeam::thread::Scope`.
///
/// Wraps `std::thread::Scope`; spawned closures receive a `&Scope` so they
/// can spawn further scoped threads, as with upstream crossbeam.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Join handle mirroring `crossbeam::thread::ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread and returns its result (`Err` on panic).
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope itself,
    /// matching crossbeam's signature (`|_| ...` at call sites that do not
    /// nest spawns).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Runs `f` with a thread scope; all spawned threads are joined before this
/// returns. Always `Ok`: a panicking child propagates on join (or at scope
/// exit), as with `std::thread::scope`.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

pub mod channel {
    //! Multi-producer channels with the crossbeam surface, over
    //! `std::sync::mpsc`.

    use std::sync::mpsc;

    /// Sending half; clonable and usable from many threads.
    pub enum Sender<T> {
        /// From [`unbounded`].
        Unbounded(mpsc::Sender<T>),
        /// From [`bounded`].
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
            }
        }
    }

    /// Error returned when every receiver is gone.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by `recv` when every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Sends a value, blocking on a full bounded channel.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Sender::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks for the next value; `Err` once the channel is closed and
        /// drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }

    /// Channel holding at most `cap` in-flight values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_compiles_and_runs() {
        let out = super::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 7);
    }

    #[test]
    fn channels_roundtrip() {
        use super::channel::{bounded, unbounded};
        let (tx, rx) = unbounded();
        let (btx, brx) = bounded(1);
        std::thread::spawn(move || {
            tx.send(5u32).unwrap();
            btx.send(6u32).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 5);
        assert_eq!(brx.recv().unwrap(), 6);
        assert!(rx.recv().is_err(), "closed channel must error");
    }
}
