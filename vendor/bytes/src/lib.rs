//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`] (cheaply clonable immutable buffer), [`BytesMut`]
//! (growable builder) and the [`Buf`]/[`BufMut`] cursor traits — the
//! surface `piggyback-store` uses for its 24-byte wire tuples. Backed by an
//! `Arc<[u8]>` window rather than upstream's vtable machinery; clone and
//! slice are O(1) and allocation-free, which is what the prototype's
//! message-passing hot path relies on.

use std::ops::Range;
use std::sync::Arc;

/// Immutable shared byte buffer. Cloning and slicing share the allocation.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// O(1) sub-window sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// View as a byte slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Growable byte builder; [`BytesMut::freeze`] converts to [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Read cursor for the `Buf` impl (bytes before it are consumed).
    cursor: usize,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty builder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            cursor: 0,
        }
    }

    /// Unconsumed length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.cursor
    }

    /// Whether no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Converts into an immutable [`Bytes`] (unconsumed portion).
    pub fn freeze(self) -> Bytes {
        if self.cursor == 0 {
            Bytes::from(self.data)
        } else {
            Bytes::from(self.data[self.cursor..].to_vec())
        }
    }

    /// Drops all content (consumed and unconsumed) and rewinds the read
    /// cursor, keeping the allocation — the reuse primitive for pooled
    /// reply buffers.
    pub fn clear(&mut self) {
        self.data.clear();
        self.cursor = 0;
    }

    /// Allocated capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Reserves room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }
}

/// Read cursor over a byte source (little-endian accessors only — the wire
/// format of the store prototype).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes and returns `n` bytes as a slice reference is not possible
    /// across implementations, so implementors expose a fixed-size copy.
    fn copy_and_advance(&mut self, n: usize) -> &[u8];

    /// Consumes 8 bytes as a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(self.copy_and_advance(8));
        u64::from_le_bytes(raw)
    }

    /// Consumes 4 bytes as a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(self.copy_and_advance(4));
        u32::from_le_bytes(raw)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_and_advance(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underrun");
        let start = self.start;
        self.start += n;
        &self.data[start..start + n]
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_and_advance(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underrun");
        let start = self.cursor;
        self.cursor += n;
        &self.data[start..start + n]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_and_advance(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underrun");
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u64` little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, Bytes, BytesMut};

    #[test]
    fn u64_roundtrip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u64_le(0xDEAD_BEEF_0BAD_F00D);
        b.put_u64_le(7);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 16);
        assert_eq!(frozen.get_u64_le(), 0xDEAD_BEEF_0BAD_F00D);
        assert_eq!(frozen.get_u64_le(), 7);
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn slice_shares_and_windows() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        assert_eq!(b.len(), 5, "parent unchanged");
    }

    #[test]
    #[should_panic(expected = "buffer underrun")]
    fn short_read_panics() {
        let mut b = Bytes::from(vec![1, 2, 3]);
        let _ = b.get_u64_le();
    }

    #[test]
    fn bytesmut_reads_its_own_writes() {
        let mut b = BytesMut::new();
        b.put_u32_le(9);
        assert_eq!(b.get_u32_le(), 9);
        assert!(b.is_empty());
    }

    #[test]
    fn slice_buf_reads_in_place() {
        let raw = 7u64.to_le_bytes();
        let mut cursor: &[u8] = &raw;
        assert_eq!(cursor.get_u64_le(), 7);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn clear_keeps_capacity_and_rewinds_cursor() {
        let mut b = BytesMut::with_capacity(64);
        b.put_u64_le(1);
        b.put_u64_le(2);
        assert_eq!(b.get_u64_le(), 1);
        let cap = b.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap, "clear must keep the allocation");
        // The buffer is fully reusable after a partial read + clear.
        b.put_u32_le(7);
        assert_eq!(b.get_u32_le(), 7);
    }
}
