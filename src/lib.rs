//! # social-piggybacking
//!
//! A Rust implementation of **"Piggybacking on Social Networks"**
//! (Gionis, Junqueira, Leroy, Serafini, Weber — PVLDB 6(6), 2013).
//!
//! Social networking systems assemble per-user event streams from
//! materialized views held in back-end data stores. This library computes
//! *request schedules* — per-edge push/pull assignments — that minimize the
//! rate of view queries and updates, including schedules that exploit
//! **social piggybacking**: serving the edge `u → v` through a common
//! contact `w` (`u` pushes to `w`'s view, `v` pulls from it), which a
//! clustered social graph offers in abundance.
//!
//! The facade re-exports the workspace crates:
//!
//! * [`graph`] — CSR social-graph substrate, generators, sampling, stats.
//! * [`workload`] — production/consumption-rate models and request traces.
//! * [`core`] — schedules, the cost model, the FEEDINGFRENZY baseline, the
//!   CHITCHAT approximation algorithm, the PARALLELNOSY heuristic, and
//!   incremental maintenance.
//! * [`mapreduce`] — the in-memory MapReduce engine PARALLELNOSY runs on.
//! * [`store`] — the memcached-style prototype store and placement-aware
//!   cost models used by the paper's prototype evaluation.
//! * [`serve`] — the online feed-serving runtime: live follow/unfollow
//!   churn through the §3.3 incremental maintenance path, epoch-swapped
//!   schedules, background re-optimization, a staleness-bounded pull
//!   cache, and a latency-percentile load harness.
//!
//! # Quickstart
//!
//! Every optimizer implements the [`Scheduler`](core::scheduler::Scheduler)
//! trait, so comparing algorithms is a loop over the registry:
//!
//! ```
//! use social_piggybacking::prelude::*;
//!
//! // A small clustered social graph and a log-degree workload (§4.1).
//! let graph = gen::flickr_like(500, 42);
//! let rates = Rates::log_degree(&graph, 5.0);
//! let inst = Instance::new(&graph, &rates);
//!
//! // The state-of-the-art baseline (Silberstein et al.) ...
//! let ff = Hybrid.schedule(&inst);
//! // ... and a piggybacking schedule, through the same trait.
//! let pn = ParallelNosy::default().schedule(&inst);
//!
//! let improvement = predicted_improvement(&graph, &rates, &pn.schedule, &ff.schedule);
//! assert!(improvement >= 1.0); // piggybacking never loses under the cost model
//!
//! // Or run everything that handles this instance:
//! for s in &scheduler::registry() {
//!     if s.supports(&inst) {
//!         let out = s.schedule(&inst);
//!         assert!(validate_bounded_staleness(&graph, &out.schedule).is_ok());
//!     }
//! }
//! ```

pub use piggyback_core as core;
pub use piggyback_graph as graph;
pub use piggyback_mapreduce as mapreduce;
pub use piggyback_serve as serve;
pub use piggyback_store as store;
pub use piggyback_workload as workload;

/// Convenient glob-import surface for examples and applications.
pub mod prelude {
    pub use piggyback_core::active::ActiveSchedule;
    pub use piggyback_core::baseline::{hybrid_schedule, pull_all_schedule, push_all_schedule};
    pub use piggyback_core::chitchat::{ChitChat, ChitChatResult};
    pub use piggyback_core::cost::{predicted_improvement, predicted_throughput, schedule_cost};
    pub use piggyback_core::incremental::IncrementalScheduler;
    pub use piggyback_core::optimal::optimal_schedule;
    pub use piggyback_core::parallelnosy::{ParallelNosy, ParallelNosyResult};
    pub use piggyback_core::schedule::{EdgeAssignment, Schedule};
    pub use piggyback_core::schedule_io::{load_schedule, save_schedule};
    pub use piggyback_core::scheduler::{
        self, Exact, Hybrid, Instance, MapReduceNosy, PullAll, PushAll, ScheduleOutcome,
        ScheduleStats, Scheduler,
    };
    pub use piggyback_core::sharded_chitchat::{Partitioning, ShardedChitChat};
    pub use piggyback_core::staleness::{check_semantic_staleness, random_actions};
    pub use piggyback_core::validate::validate_bounded_staleness;
    pub use piggyback_graph::{gen, sample, stats, CsrGraph, DynamicGraph, GraphBuilder};
    pub use piggyback_serve::{
        run_harness, Arrival, HarnessConfig, HarnessReport, ServeClient, ServeConfig, ServeRuntime,
    };
    pub use piggyback_store::cluster::{Cluster, ClusterConfig};
    pub use piggyback_store::latency::LatencyHistogram;
    pub use piggyback_store::placement::PlacementCost;
    pub use piggyback_store::topology::{
        partitioner_by_name, partitioners, PartitionRequest, PartitionStrategy, Partitioner,
        Topology,
    };
    pub use piggyback_workload::{
        zipf_rates, Op, OpTrace, Rates, RequestKind, RequestTrace, ZipfConfig,
    };
}
