//! `piggyback` — command-line front end for the social-piggybacking
//! library: generate graphs, compute request schedules offline, and
//! evaluate them, mirroring the paper's deployment model (schedules are
//! computed out-of-band and shipped to the application servers).
//!
//! ```text
//! piggyback generate  --model flickr --nodes 4000 --seed 42 --out g.edges
//! piggyback stats     --graph g.edges
//! piggyback schedule  --graph g.edges --algorithm parallelnosy --out s.sched
//! piggyback evaluate  --graph g.edges --schedule s.sched --servers 500
//! piggyback partition --graph g.edges --schedule s.sched --servers 16 \
//!                     --partitioner schedule-aware
//! piggyback compare   --preset flickr-like --nodes 2000
//! piggyback serve     --model flickr --nodes 100000 --algorithm chitchat --duration 2s
//! ```
//!
//! `serve` is the *online* mode: it boots the `piggyback-serve` runtime
//! and drives it with an interleaved share/query/follow/unfollow workload,
//! reporting throughput, latency percentiles, churn/re-optimization
//! accounting, and the post-run bounded-staleness validation.
//!
//! Every optimizer is reached through the [`Scheduler`] registry — the CLI
//! has no per-algorithm call sites, so a newly registered algorithm shows
//! up in `schedule --algorithm` and `compare` automatically.

use std::collections::HashMap;
use std::process::ExitCode;

use social_piggybacking::core::cost::CostModel;
use social_piggybacking::core::schedule_io::{load_schedule, save_schedule};
use social_piggybacking::core::sharded_chitchat::ShardedChitChat;
use social_piggybacking::core::validate::coverage_report;
use social_piggybacking::graph::io::{load_edge_list, save_edge_list};
use social_piggybacking::graph::stats as gstats;
use social_piggybacking::prelude::*;
use social_piggybacking::store::placement::PlacementCost as Pc;
use social_piggybacking::store::topology::edges_cut;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  piggyback generate --model <flickr|twitter|erdos-renyi|copying> --nodes <n> \\
                     [--seed <s>] [--edges <m>] --out <file>
  piggyback stats    --graph <file>
  piggyback schedule --graph <file> --algorithm <name> \\
                     [--rw-ratio <r>] [--shards <k>] [--threads <t>] --out <file>
  piggyback evaluate --graph <file> --schedule <file> [--rw-ratio <r>] [--servers <n>]
  piggyback partition --graph <file> [--schedule <file>] [--partitioner <name>] \\
                     [--servers <n>] [--seed <s>] [--rw-ratio <r>]
  piggyback analyze  --graph <file> --schedule <file> [--rw-ratio <r>] [--top <k>]
  piggyback compare  [--preset <flickr-like|twitter-like>] [--graph <file>] \\
                     [--nodes <n>] [--seed <s>] [--rw-ratio <r>] [--shards <k>] \\
                     [--threads <t>] [--servers <n>]
  piggyback serve    [--graph <file> | --model <m> --nodes <n>] [--algorithm <name>] \\
                     [--duration <2s|500ms>] [--clients <n>] [--servers <n>] \\
                     [--workers <n>] [--churn-ratio <f>] [--rate <ops/s>] \\
                     [--cache-ttl-ms <n>] [--reopt-threshold <f>] \\
                     [--partitioner <name>] [--rebalance-threshold <f>] \\
                     [--rw-ratio <r>] [--seed <s>] [--threads <t>] \\
                     [--rpc <batched|direct|legacy>] [--stats-interval <1s|500ms>]

<name> under --algorithm is any registered scheduler (see `compare`
output), e.g. hybrid, chitchat, parallelnosy, parallelnosy-mr,
sharded-chitchat, exact; under --partitioner it is hash, ldg, or
schedule-aware.";

/// Parses `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {:?}", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn required<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{key}"))
}

fn parsed<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for --{key}: {v:?}")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("no subcommand given".into());
    };
    let flags = parse_flags(rest)?;
    match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "stats" => cmd_stats(&flags),
        "schedule" => cmd_schedule(&flags),
        "evaluate" => cmd_evaluate(&flags),
        "partition" => cmd_partition(&flags),
        "analyze" => cmd_analyze(&flags),
        "compare" => cmd_compare(&flags),
        "serve" => cmd_serve(&flags),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let model = required(flags, "model")?;
    let nodes: usize = parsed(flags, "nodes", 4000)?;
    let seed: u64 = parsed(flags, "seed", 42)?;
    let out = required(flags, "out")?;
    let g = match model {
        "flickr" => gen::flickr_like(nodes, seed),
        "twitter" => gen::twitter_like(nodes, seed),
        "erdos-renyi" => {
            let edges: usize = parsed(flags, "edges", nodes * 10)?;
            gen::erdos_renyi(nodes, edges, seed)
        }
        "copying" => gen::copying(gen::CopyingConfig {
            nodes,
            follows_per_node: parsed(flags, "follows", 8)?,
            copy_prob: parsed(flags, "copy-prob", 0.9)?,
            seed,
        }),
        other => return Err(format!("unknown model {other:?}")),
    };
    save_edge_list(&g, out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} nodes / {} edges to {out}",
        g.node_count(),
        g.edge_count()
    );
    Ok(())
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = required(flags, "graph")?;
    let g = load_edge_list(path).map_err(|e| e.to_string())?;
    let out = gstats::out_degree_summary(&g);
    let inn = gstats::in_degree_summary(&g);
    let (closed, wedges) = gstats::piggyback_triangles(&g, 500, 7);
    println!("nodes:        {}", g.node_count());
    println!("edges:        {}", g.edge_count());
    println!(
        "out-degree:   mean {:.2}  median {}  p99 {}  max {}",
        out.mean, out.median, out.p99, out.max
    );
    println!(
        "in-degree:    mean {:.2}  median {}  p99 {}  max {}",
        inn.mean, inn.median, inn.p99, inn.max
    );
    println!("reciprocity:  {:.3}", gstats::reciprocity(&g));
    println!(
        "clustering:   {:.3} (sampled)",
        gstats::sampled_clustering_coefficient(&g, 500, 7)
    );
    println!(
        "wedge closure: {:.3} ({} closed / {} wedges, sampled)",
        closed as f64 / wedges.max(1) as f64,
        closed,
        wedges
    );
    Ok(())
}

/// Applies CLI configuration flags to a registry scheduler. The one place
/// per-algorithm flags live: `schedule`, `compare` and `serve` all route
/// through it, so a flag honored in one subcommand is honored in the
/// others. `--threads` caps the worker fan-out of every parallel optimizer
/// (0 = one per core); every registered algorithm is deterministic across
/// thread counts, so the flag never changes the schedule.
fn configure_scheduler(
    flags: &HashMap<String, String>,
    scheduler: Box<dyn Scheduler>,
) -> Result<Box<dyn Scheduler>, String> {
    let threads: usize = parsed(flags, "threads", 0)?;
    if scheduler.name() == "sharded-chitchat" {
        let shards: usize = parsed(flags, "shards", 4)?;
        if shards < 1 {
            return Err("--shards must be at least 1".into());
        }
        return Ok(Box::new(ShardedChitChat {
            shards,
            threads,
            ..Default::default()
        }));
    }
    if threads > 0 {
        return scheduler::by_name_with_threads(scheduler.name(), threads)
            .ok_or_else(|| format!("unknown algorithm {:?}", scheduler.name()));
    }
    Ok(scheduler)
}

/// Resolves `--algorithm` against the scheduler registry and applies any
/// configuration flags.
fn resolve_scheduler(
    flags: &HashMap<String, String>,
    algorithm: &str,
) -> Result<Box<dyn Scheduler>, String> {
    let scheduler =
        scheduler::by_name(algorithm).ok_or_else(|| format!("unknown algorithm {algorithm:?}"))?;
    configure_scheduler(flags, scheduler)
}

fn cmd_schedule(flags: &HashMap<String, String>) -> Result<(), String> {
    let g = load_edge_list(required(flags, "graph")?).map_err(|e| e.to_string())?;
    let ratio: f64 = parsed(flags, "rw-ratio", 5.0)?;
    let rates = Rates::log_degree(&g, ratio);
    let out = required(flags, "out")?;
    let scheduler = resolve_scheduler(flags, required(flags, "algorithm")?)?;
    let inst = Instance::new(&g, &rates);
    if !scheduler.supports(&inst) {
        return Err(format!(
            "algorithm {:?} cannot handle this instance (too large for exact search)",
            scheduler.name()
        ));
    }
    let outcome = scheduler.schedule(&inst);
    validate_bounded_staleness(&g, &outcome.schedule)
        .map_err(|e| format!("internal error — infeasible schedule: {e}"))?;
    save_schedule(&outcome.schedule, out).map_err(|e| e.to_string())?;
    let ff = Hybrid.schedule(&inst);
    println!(
        "wrote schedule to {out}: cost {:.1}, improvement over hybrid {:.3}x",
        outcome.stats.cost,
        predicted_improvement(&g, &rates, &outcome.schedule, &ff.schedule)
    );
    Ok(())
}

/// Runs every registered scheduler on one instance and prints one
/// cost/stats line per algorithm.
fn cmd_compare(flags: &HashMap<String, String>) -> Result<(), String> {
    let nodes: usize = parsed(flags, "nodes", 2000)?;
    let seed: u64 = parsed(flags, "seed", 42)?;
    let ratio: f64 = parsed(flags, "rw-ratio", 5.0)?;
    let g = match flags.get("graph") {
        Some(path) => {
            // --graph fixes the instance; generation flags would be
            // silently dead, so reject the combination.
            for conflicting in ["preset", "nodes", "seed"] {
                if flags.contains_key(conflicting) {
                    return Err(format!("--graph conflicts with --{conflicting}"));
                }
            }
            load_edge_list(path).map_err(|e| e.to_string())?
        }
        None => match flags
            .get("preset")
            .map(String::as_str)
            .unwrap_or("flickr-like")
        {
            "flickr-like" | "flickr" => gen::flickr_like(nodes, seed),
            "twitter-like" | "twitter" => gen::twitter_like(nodes, seed),
            other => return Err(format!("unknown preset {other:?}")),
        },
    };
    let rates = Rates::log_degree(&g, ratio);
    let inst = Instance::new(&g, &rates);
    println!(
        "# instance: {} nodes, {} edges, rw-ratio {ratio}",
        g.node_count(),
        g.edge_count()
    );
    let hybrid_cost = Hybrid.schedule(&inst).stats.cost;
    // With --servers, re-price every schedule against a hash topology and
    // append the intra/cross split (batching makes intra-server free).
    let topology = match flags.get("servers") {
        Some(v) => {
            let servers: usize = v
                .parse()
                .map_err(|_| "invalid value for --servers".to_string())?;
            if servers < 1 {
                return Err("--servers must be at least 1".into());
            }
            Some(Topology::hash(g.node_count(), servers, seed))
        }
        None => None,
    };
    match &topology {
        Some(t) => println!(
            "# {:<18} {:>12} {:>8} {:>12} {:>10} {:>10} {:>10} {:>12} {:>12}",
            "algorithm",
            "cost",
            "vs_ff",
            "oracle",
            "iters",
            "hubs",
            "wall_ms",
            "intra",
            format!("cross@{}", t.servers())
        ),
        None => println!(
            "# {:<18} {:>12} {:>8} {:>12} {:>10} {:>10} {:>10}",
            "algorithm", "cost", "vs_ff", "oracle", "iters", "hubs", "wall_ms"
        ),
    }
    let schedulers: Vec<Box<dyn Scheduler>> = scheduler::registry()
        .into_iter()
        .map(|s| configure_scheduler(flags, s))
        .collect::<Result<_, _>>()?;
    for s in &schedulers {
        if !s.supports(&inst) {
            println!("  {:<18} (skipped: instance unsupported)", s.name());
            continue;
        }
        let mut out = s.schedule(&inst);
        validate_bounded_staleness(&g, &out.schedule)
            .map_err(|e| format!("{}: infeasible schedule: {e}", s.name()))?;
        if let Some(t) = &topology {
            CostModel::with_topology(t.assignment(), t.servers()).annotate(
                &g,
                &rates,
                &out.schedule,
                &mut out.stats,
            );
        }
        let st = &out.stats;
        print!(
            "  {:<18} {:>12.1} {:>7.3}x {:>12} {:>10} {:>10} {:>10.1}",
            s.name(),
            st.cost,
            if st.cost > 0.0 {
                hybrid_cost / st.cost
            } else {
                f64::INFINITY
            },
            st.oracle_calls,
            st.iterations,
            st.hubs_applied,
            st.wall_time.as_secs_f64() * 1e3
        );
        if topology.is_some() {
            print!(" {:>12.1} {:>12.1}", st.intra_cost, st.cross_cost);
        }
        println!();
    }
    Ok(())
}

fn cmd_evaluate(flags: &HashMap<String, String>) -> Result<(), String> {
    let g = load_edge_list(required(flags, "graph")?).map_err(|e| e.to_string())?;
    let ratio: f64 = parsed(flags, "rw-ratio", 5.0)?;
    let rates = Rates::log_degree(&g, ratio);
    let schedule =
        load_schedule(required(flags, "schedule")?, g.edge_count()).map_err(|e| e.to_string())?;
    validate_bounded_staleness(&g, &schedule).map_err(|e| format!("infeasible schedule: {e}"))?;
    let ff = hybrid_schedule(&g, &rates);
    let report = coverage_report(&g, &schedule);
    println!("cost:        {:.1}", schedule_cost(&g, &rates, &schedule));
    println!(
        "improvement: {:.3}x over hybrid",
        predicted_improvement(&g, &rates, &schedule, &ff)
    );
    println!(
        "serving:     {} push, {} pull, {} both, {} piggybacked, {} unserved",
        report.push, report.pull, report.both, report.covered, report.unserved
    );
    if let Some(servers) = flags.get("servers") {
        let servers: usize = servers
            .parse()
            .map_err(|_| "invalid value for --servers".to_string())?;
        let placement = Topology::hash(g.node_count(), servers, 1);
        let pc = Pc::new(&g, &rates, &schedule);
        let pc_ff = Pc::new(&g, &rates, &ff);
        println!(
            "@{servers} servers: normalized throughput {:.4} (hybrid {:.4}), load balance σ {:.2e}",
            pc.normalized_throughput(&placement),
            pc_ff.normalized_throughput(&placement),
            pc.load_balance(&placement).1.sqrt()
        );
    }
    Ok(())
}

/// Parses `"2s"`, `"500ms"`, or a plain number of seconds.
fn parse_duration(v: &str) -> Result<std::time::Duration, String> {
    let (num, scale) = if let Some(ms) = v.strip_suffix("ms") {
        (ms, 1e-3)
    } else if let Some(s) = v.strip_suffix('s') {
        (s, 1.0)
    } else {
        (v, 1.0)
    };
    let secs: f64 = num
        .parse()
        .map_err(|_| format!("invalid duration {v:?} (use e.g. 2s or 500ms)"))?;
    if !secs.is_finite() || secs <= 0.0 || secs * scale > 86_400.0 {
        return Err("duration must be positive (and at most 24h)".into());
    }
    Ok(std::time::Duration::from_secs_f64(secs * scale))
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let seed: u64 = parsed(flags, "seed", 42)?;
    let g = match flags.get("graph") {
        Some(path) => load_edge_list(path).map_err(|e| e.to_string())?,
        None => {
            let nodes: usize = parsed(flags, "nodes", 10_000)?;
            match flags.get("model").map(String::as_str).unwrap_or("flickr") {
                "flickr" => gen::flickr_like(nodes, seed),
                "twitter" => gen::twitter_like(nodes, seed),
                other => return Err(format!("unknown model {other:?}")),
            }
        }
    };
    let ratio: f64 = parsed(flags, "rw-ratio", 5.0)?;
    let rates = Rates::log_degree(&g, ratio);
    let algorithm = flags
        .get("algorithm")
        .map(String::as_str)
        .unwrap_or("parallelnosy");
    let scheduler = resolve_scheduler(flags, algorithm)?;
    let inst = Instance::new(&g, &rates);
    if !scheduler.supports(&inst) {
        return Err(format!(
            "algorithm {algorithm:?} cannot handle this instance"
        ));
    }
    let outcome = scheduler.schedule(&inst);
    validate_bounded_staleness(&g, &outcome.schedule)
        .map_err(|e| format!("internal error — infeasible schedule: {e}"))?;
    let partition_name = flags
        .get("partitioner")
        .map(String::as_str)
        .unwrap_or("hash");
    let partition = PartitionStrategy::parse(partition_name)
        .ok_or_else(|| format!("unknown partitioner {partition_name:?}"))?;
    let rpc_name = flags.get("rpc").map(String::as_str).unwrap_or("batched");
    let rpc = piggyback_serve::RpcMode::parse(rpc_name)
        .ok_or_else(|| format!("unknown rpc mode {rpc_name:?} (batched|direct|legacy)"))?;
    let serve_config = ServeConfig {
        shards: parsed(flags, "servers", 64)?,
        rpc,
        workers: parsed(flags, "workers", 4)?,
        pull_cache_ttl: std::time::Duration::from_millis(parsed(flags, "cache-ttl-ms", 0)?),
        reopt_threshold: parsed(flags, "reopt-threshold", 0.2)?,
        partition,
        rebalance_threshold: parsed(flags, "rebalance-threshold", f64::INFINITY)?,
        placement_seed: seed,
        replication: parsed(flags, "replication", 1)?,
        domains: parsed(flags, "domains", 0)?,
        heartbeat_interval: std::time::Duration::from_millis(parsed(flags, "heartbeat-ms", 0)?),
        ..Default::default()
    };
    let churn_ratio: f64 = parsed(flags, "churn-ratio", 0.02)?;
    if !(0.0..=1.0).contains(&churn_ratio) {
        return Err("--churn-ratio must be in [0, 1]".into());
    }
    let load = HarnessConfig {
        clients: parsed(flags, "clients", 4)?,
        duration: parse_duration(flags.get("duration").map(String::as_str).unwrap_or("2s"))?,
        churn_ratio,
        arrival: match flags.get("rate") {
            Some(r) => Arrival::Open {
                ops_per_sec: r.parse().map_err(|_| "invalid value for --rate")?,
            },
            None => Arrival::Closed,
        },
        seed,
        stats_interval: flags
            .get("stats-interval")
            .map(|v| parse_duration(v))
            .transpose()?,
        chaos: None,
    };
    println!(
        "# online serve: {} nodes, {} edges, schedule {} (cost {:.1}), {} servers, {} clients, churn {:.1}%",
        g.node_count(),
        g.edge_count(),
        algorithm,
        outcome.stats.cost,
        serve_config.shards,
        load.clients,
        load.churn_ratio * 100.0
    );
    let report = run_harness(&g, &rates, outcome.schedule, scheduler, serve_config, &load);
    let churn = &report.serve.churn;
    println!(
        "throughput:  {:.0} op/s ({} ops in {:.2}s; {} shares, {} queries, {} follows, {} unfollows)",
        report.throughput(),
        report.ops,
        report.elapsed_secs,
        report.shares,
        report.queries,
        report.follows,
        report.unfollows
    );
    println!(
        "messages:    {} total, {:.2} per op",
        report.messages,
        report.messages as f64 / report.ops.max(1) as f64
    );
    println!(
        "latency:     p50 {:.3}ms  p95 {:.3}ms  p99 {:.3}ms  max {:.3}ms",
        report.quantile_ms(0.5),
        report.quantile_ms(0.95),
        report.quantile_ms(0.99),
        report.latency.max_ns() as f64 / 1e6
    );
    println!(
        "churn:       {} follows + {} unfollows applied ({} rejected), {} epochs published, {} re-optimizations",
        churn.follows_applied,
        churn.unfollows_applied,
        churn.churn_rejected,
        report.serve.final_epoch,
        churn.reopts
    );
    println!(
        "topology:    {} partitioner, {} rebalances, {} views migrated",
        partition.name(),
        churn.rebalances,
        churn.users_migrated
    );
    println!(
        "cost:        base {:.1} -> final {:.1} ({:+.2}%)",
        churn.base_cost,
        churn.final_cost,
        if churn.base_cost > 0.0 {
            (churn.final_cost / churn.base_cost - 1.0) * 100.0
        } else {
            0.0
        }
    );
    if report.serve.cache_hits + report.serve.cache_misses > 0 {
        println!(
            "pull cache:  {} hits / {} misses ({:.1}% hit rate)",
            report.serve.cache_hits,
            report.serve.cache_misses,
            100.0 * report.serve.cache_hits as f64
                / (report.serve.cache_hits + report.serve.cache_misses) as f64
        );
    }
    if let Some(snap) = &report.serve.metrics {
        println!(
            "metrics:     {} instruments; final snapshot (rates over {:.2}s):",
            snap.len(),
            report.elapsed_secs
        );
        print!("{}", snap.render(Some(report.elapsed_secs)));
    }
    match &churn.staleness_violation {
        None => println!("staleness:   OK (zero violations, validated post-run)"),
        Some(v) => return Err(format!("staleness violated after online churn: {v}")),
    }
    Ok(())
}

/// Partitions a graph with any registered partitioner and prints
/// per-shard statistics: users, edge cut, intra/cross message estimate.
fn cmd_partition(flags: &HashMap<String, String>) -> Result<(), String> {
    let g = load_edge_list(required(flags, "graph")?).map_err(|e| e.to_string())?;
    let ratio: f64 = parsed(flags, "rw-ratio", 5.0)?;
    let servers: usize = parsed(flags, "servers", 16)?;
    if servers < 1 {
        return Err("--servers must be at least 1".into());
    }
    let seed: u64 = parsed(flags, "seed", 42)?;
    let rates = Rates::log_degree(&g, ratio);
    // Without --schedule the hybrid baseline prices the traffic; with one,
    // the schedule-aware partitioner exploits its hub structure.
    let schedule = match flags.get("schedule") {
        Some(path) => load_schedule(path, g.edge_count()).map_err(|e| e.to_string())?,
        None => hybrid_schedule(&g, &rates),
    };
    let name = flags
        .get("partitioner")
        .map(String::as_str)
        .unwrap_or("schedule-aware");
    let partitioner =
        partitioner_by_name(name).ok_or_else(|| format!("unknown partitioner {name:?}"))?;
    let topology = partitioner.partition(&PartitionRequest {
        graph: &g,
        rates: &rates,
        schedule: Some(&schedule),
        servers,
        seed,
        domains: None,
    });
    let acct =
        CostModel::with_topology(topology.assignment(), servers).accounting(&g, &rates, &schedule);
    println!(
        "# partitioner {name}: {} users, {} servers, {} of {} edges cut",
        topology.users(),
        servers,
        edges_cut(&g, &topology),
        g.edge_count()
    );
    println!(
        "# message rate: total {:.1} = intra {:.1} + cross {:.1} ({:.1}% crosses servers)",
        acct.total,
        acct.intra,
        acct.cross,
        100.0 * acct.cross_fraction()
    );
    println!(
        "# {:>5} {:>8} {:>12} {:>12} {:>14} {:>14}",
        "shard", "users", "edges_in", "edges_cut", "ingress_rate", "egress_rate"
    );
    let sizes = topology.shard_sizes();
    let mut edges_within = vec![0usize; servers];
    let mut edges_crossing = vec![0usize; servers];
    for (_, u, v) in g.edges() {
        let (su, sv) = (topology.server_of(u), topology.server_of(v));
        if su == sv {
            edges_within[su] += 1;
        } else {
            edges_crossing[su] += 1;
            edges_crossing[sv] += 1;
        }
    }
    for s in 0..servers {
        println!(
            "  {:>5} {:>8} {:>12} {:>12} {:>14.1} {:>14.1}",
            s, sizes[s], edges_within[s], edges_crossing[s], acct.ingress[s], acct.egress[s]
        );
    }
    Ok(())
}

fn cmd_analyze(flags: &HashMap<String, String>) -> Result<(), String> {
    use social_piggybacking::core::analysis::{amplification, cost_breakdown, hub_report};
    let g = load_edge_list(required(flags, "graph")?).map_err(|e| e.to_string())?;
    let ratio: f64 = parsed(flags, "rw-ratio", 5.0)?;
    let top: usize = parsed(flags, "top", 10)?;
    let rates = Rates::log_degree(&g, ratio);
    let schedule =
        load_schedule(required(flags, "schedule")?, g.edge_count()).map_err(|e| e.to_string())?;
    let b = cost_breakdown(&g, &rates, &schedule);
    println!(
        "cost breakdown: push {:.1} + pull {:.1} = {:.1}; piggybacking saves {:.1}",
        b.push_cost,
        b.pull_cost,
        b.total(),
        b.covered_hybrid_cost
    );
    let a = amplification(&g, &rates, &schedule);
    println!(
        "amplification:  {:.2} views/share, {:.2} views/query (rate-weighted)",
        a.views_per_share, a.views_per_query
    );
    let hubs = hub_report(&g, &schedule);
    println!("hubs:           {} total; top {top}:", hubs.len());
    for h in hubs.iter().take(top) {
        println!(
            "  user {:>8}: covers {:>5} edges ({} pushes in, {} pulls out)",
            h.hub, h.edges_covered, h.pushes_in, h.pulls_out
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let flags = parse_flags(&s(&["--model", "flickr", "--nodes", "100"])).unwrap();
        assert_eq!(flags["model"], "flickr");
        assert_eq!(flags["nodes"], "100");
    }

    #[test]
    fn missing_value_rejected() {
        assert!(parse_flags(&s(&["--model"])).is_err());
        assert!(parse_flags(&s(&["model", "x"])).is_err());
    }

    #[test]
    fn unknown_subcommand_rejected() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn end_to_end_via_tempdir() {
        let dir = std::env::temp_dir().join("piggyback-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let graph = dir.join("g.edges").to_string_lossy().into_owned();
        let sched = dir.join("s.sched").to_string_lossy().into_owned();
        run(&s(&[
            "generate", "--model", "flickr", "--nodes", "300", "--seed", "7", "--out", &graph,
        ]))
        .unwrap();
        run(&s(&["stats", "--graph", &graph])).unwrap();
        run(&s(&[
            "schedule",
            "--graph",
            &graph,
            "--algorithm",
            "parallelnosy",
            "--out",
            &sched,
        ]))
        .unwrap();
        run(&s(&[
            "evaluate",
            "--graph",
            &graph,
            "--schedule",
            &sched,
            "--servers",
            "100",
        ]))
        .unwrap();
        run(&s(&[
            "analyze",
            "--graph",
            &graph,
            "--schedule",
            &sched,
            "--top",
            "5",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compare_runs_every_registered_scheduler() {
        run(&s(&[
            "compare",
            "--preset",
            "flickr-like",
            "--nodes",
            "150",
            "--seed",
            "3",
        ]))
        .unwrap();
        run(&s(&[
            "compare",
            "--preset",
            "twitter-like",
            "--nodes",
            "120",
        ]))
        .unwrap();
        // Topology-aware columns: cost re-priced against a hash topology.
        run(&s(&[
            "compare",
            "--preset",
            "flickr-like",
            "--nodes",
            "120",
            "--servers",
            "32",
        ]))
        .unwrap();
        assert!(run(&s(&[
            "compare",
            "--preset",
            "flickr-like",
            "--nodes",
            "120",
            "--servers",
            "0",
        ]))
        .is_err());
        assert!(run(&s(&["compare", "--preset", "weird"])).is_err());
        // Generation flags are dead when --graph fixes the instance.
        let err = run(&s(&[
            "compare",
            "--graph",
            "g.edges",
            "--preset",
            "flickr-like",
        ]))
        .unwrap_err();
        assert!(err.contains("conflicts"), "{err}");
    }

    #[test]
    fn schedule_accepts_registry_names() {
        let dir = std::env::temp_dir().join("piggyback-cli-test3");
        std::fs::create_dir_all(&dir).unwrap();
        let graph = dir.join("g.edges").to_string_lossy().into_owned();
        run(&s(&[
            "generate", "--model", "flickr", "--nodes", "200", "--seed", "1", "--out", &graph,
        ]))
        .unwrap();
        for algo in ["hybrid", "chitchat", "sharded-chitchat", "parallelnosy-mr"] {
            let sched = dir
                .join(format!("{algo}.sched"))
                .to_string_lossy()
                .into_owned();
            run(&s(&[
                "schedule",
                "--graph",
                &graph,
                "--algorithm",
                algo,
                "--out",
                &sched,
            ]))
            .unwrap_or_else(|e| panic!("{algo}: {e}"));
        }
        // Exact must refuse an instance this large instead of hanging.
        let err = run(&s(&[
            "schedule",
            "--graph",
            &graph,
            "--algorithm",
            "exact",
            "--out",
            "/dev/null",
        ]))
        .unwrap_err();
        assert!(err.contains("cannot handle"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threads_flag_reaches_every_optimizer_entry_point() {
        let dir = std::env::temp_dir().join("piggyback-cli-test4");
        std::fs::create_dir_all(&dir).unwrap();
        let graph = dir.join("g.edges").to_string_lossy().into_owned();
        run(&s(&[
            "generate", "--model", "flickr", "--nodes", "200", "--seed", "9", "--out", &graph,
        ]))
        .unwrap();
        // schedule: any algorithm accepts --threads (identical schedules,
        // so the files must round-trip through evaluate).
        for algo in ["chitchat", "parallelnosy", "sharded-chitchat"] {
            let sched = dir
                .join(format!("{algo}.sched"))
                .to_string_lossy()
                .into_owned();
            run(&s(&[
                "schedule",
                "--graph",
                &graph,
                "--algorithm",
                algo,
                "--threads",
                "2",
                "--out",
                &sched,
            ]))
            .unwrap_or_else(|e| panic!("{algo}: {e}"));
            run(&s(&["evaluate", "--graph", &graph, "--schedule", &sched])).unwrap();
        }
        // compare honors it for the whole registry sweep.
        run(&s(&[
            "compare",
            "--preset",
            "flickr-like",
            "--nodes",
            "150",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert!(run(&s(&[
            "schedule",
            "--graph",
            &graph,
            "--algorithm",
            "chitchat",
            "--threads",
            "zap",
            "--out",
            "/dev/null",
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partition_subcommand_reports_all_partitioners() {
        let dir = std::env::temp_dir().join("piggyback-cli-test5");
        std::fs::create_dir_all(&dir).unwrap();
        let graph = dir.join("g.edges").to_string_lossy().into_owned();
        let sched = dir.join("s.sched").to_string_lossy().into_owned();
        run(&s(&[
            "generate", "--model", "flickr", "--nodes", "300", "--seed", "4", "--out", &graph,
        ]))
        .unwrap();
        // Schedule-free: hybrid traffic prices the partition.
        run(&s(&["partition", "--graph", &graph, "--servers", "4"])).unwrap();
        // With an optimized schedule, for every registered partitioner.
        run(&s(&[
            "schedule",
            "--graph",
            &graph,
            "--algorithm",
            "parallelnosy",
            "--out",
            &sched,
        ]))
        .unwrap();
        for p in ["hash", "ldg", "schedule-aware"] {
            run(&s(&[
                "partition",
                "--graph",
                &graph,
                "--schedule",
                &sched,
                "--servers",
                "8",
                "--partitioner",
                p,
            ]))
            .unwrap_or_else(|e| panic!("{p}: {e}"));
        }
        let err = run(&s(&[
            "partition",
            "--graph",
            &graph,
            "--partitioner",
            "round-robin",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown partitioner"), "{err}");
        assert!(run(&s(&["partition", "--graph", &graph, "--servers", "0"])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_accepts_partitioner_and_rebalance_flags() {
        run(&s(&[
            "serve",
            "--model",
            "flickr",
            "--nodes",
            "300",
            "--duration",
            "150ms",
            "--clients",
            "2",
            "--servers",
            "8",
            "--partitioner",
            "schedule-aware",
            "--rebalance-threshold",
            "0.0001",
            "--churn-ratio",
            "0.2",
        ]))
        .unwrap();
        assert!(run(&s(&["serve", "--partitioner", "bogus"])).is_err());
    }

    #[test]
    fn serve_subcommand_runs_online_and_validates() {
        run(&s(&[
            "serve",
            "--model",
            "flickr",
            "--nodes",
            "400",
            "--algorithm",
            "chitchat",
            "--duration",
            "200ms",
            "--clients",
            "2",
            "--servers",
            "8",
            "--workers",
            "2",
            "--churn-ratio",
            "0.05",
            "--cache-ttl-ms",
            "20",
        ]))
        .unwrap();
        // Open-loop arrival and threshold flags parse too.
        run(&s(&[
            "serve",
            "--model",
            "flickr",
            "--nodes",
            "200",
            "--duration",
            "150ms",
            "--rate",
            "500",
            "--reopt-threshold",
            "0.01",
        ]))
        .unwrap();
        assert!(run(&s(&["serve", "--duration", "bogus"])).is_err());
        assert!(run(&s(&["serve", "--duration", "-1s"])).is_err());
        assert!(run(&s(&["serve", "--duration", "inf"])).is_err());
        assert!(run(&s(&["serve", "--duration", "9e99s"])).is_err());
        assert!(run(&s(&["serve", "--churn-ratio", "1.5"])).is_err());
        assert!(run(&s(&["serve", "--model", "weird"])).is_err());
    }

    #[test]
    fn duration_parsing() {
        assert_eq!(
            parse_duration("2s").unwrap(),
            std::time::Duration::from_secs(2)
        );
        assert_eq!(
            parse_duration("500ms").unwrap(),
            std::time::Duration::from_millis(500)
        );
        assert_eq!(
            parse_duration("1.5").unwrap(),
            std::time::Duration::from_millis(1500)
        );
        assert!(parse_duration("0s").is_err());
        assert!(parse_duration("x").is_err());
    }

    #[test]
    fn schedule_rejects_unknown_algorithm() {
        let dir = std::env::temp_dir().join("piggyback-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let graph = dir.join("g.edges").to_string_lossy().into_owned();
        run(&s(&[
            "generate",
            "--model",
            "erdos-renyi",
            "--nodes",
            "50",
            "--edges",
            "200",
            "--out",
            &graph,
        ]))
        .unwrap();
        let err = run(&s(&[
            "schedule",
            "--graph",
            &graph,
            "--algorithm",
            "magic",
            "--out",
            "/dev/null",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown algorithm"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
