//! `piggyback` — command-line front end for the social-piggybacking
//! library: generate graphs, compute request schedules offline, and
//! evaluate them, mirroring the paper's deployment model (schedules are
//! computed out-of-band and shipped to the application servers).
//!
//! ```text
//! piggyback generate --model flickr --nodes 4000 --seed 42 --out g.edges
//! piggyback stats    --graph g.edges
//! piggyback schedule --graph g.edges --algorithm parallelnosy --out s.sched
//! piggyback evaluate --graph g.edges --schedule s.sched --servers 500
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use social_piggybacking::core::chitchat::ChitChat;
use social_piggybacking::core::parallelnosy::ParallelNosy;
use social_piggybacking::core::schedule_io::{load_schedule, save_schedule};
use social_piggybacking::core::sharded_chitchat::ShardedChitChat;
use social_piggybacking::core::validate::coverage_report;
use social_piggybacking::graph::io::{load_edge_list, save_edge_list};
use social_piggybacking::graph::stats as gstats;
use social_piggybacking::prelude::*;
use social_piggybacking::store::placement::PlacementCost as Pc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  piggyback generate --model <flickr|twitter|erdos-renyi|copying> --nodes <n> \\
                     [--seed <s>] [--edges <m>] --out <file>
  piggyback stats    --graph <file>
  piggyback schedule --graph <file> --algorithm <ff|parallelnosy|chitchat|sharded> \\
                     [--rw-ratio <r>] [--shards <k>] --out <file>
  piggyback evaluate --graph <file> --schedule <file> [--rw-ratio <r>] [--servers <n>]
  piggyback analyze  --graph <file> --schedule <file> [--rw-ratio <r>] [--top <k>]";

/// Parses `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {:?}", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn required<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{key}"))
}

fn parsed<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for --{key}: {v:?}")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("no subcommand given".into());
    };
    let flags = parse_flags(rest)?;
    match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "stats" => cmd_stats(&flags),
        "schedule" => cmd_schedule(&flags),
        "evaluate" => cmd_evaluate(&flags),
        "analyze" => cmd_analyze(&flags),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let model = required(flags, "model")?;
    let nodes: usize = parsed(flags, "nodes", 4000)?;
    let seed: u64 = parsed(flags, "seed", 42)?;
    let out = required(flags, "out")?;
    let g = match model {
        "flickr" => gen::flickr_like(nodes, seed),
        "twitter" => gen::twitter_like(nodes, seed),
        "erdos-renyi" => {
            let edges: usize = parsed(flags, "edges", nodes * 10)?;
            gen::erdos_renyi(nodes, edges, seed)
        }
        "copying" => gen::copying(gen::CopyingConfig {
            nodes,
            follows_per_node: parsed(flags, "follows", 8)?,
            copy_prob: parsed(flags, "copy-prob", 0.9)?,
            seed,
        }),
        other => return Err(format!("unknown model {other:?}")),
    };
    save_edge_list(&g, out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} nodes / {} edges to {out}",
        g.node_count(),
        g.edge_count()
    );
    Ok(())
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = required(flags, "graph")?;
    let g = load_edge_list(path).map_err(|e| e.to_string())?;
    let out = gstats::out_degree_summary(&g);
    let inn = gstats::in_degree_summary(&g);
    let (closed, wedges) = gstats::piggyback_triangles(&g, 500, 7);
    println!("nodes:        {}", g.node_count());
    println!("edges:        {}", g.edge_count());
    println!(
        "out-degree:   mean {:.2}  median {}  p99 {}  max {}",
        out.mean, out.median, out.p99, out.max
    );
    println!(
        "in-degree:    mean {:.2}  median {}  p99 {}  max {}",
        inn.mean, inn.median, inn.p99, inn.max
    );
    println!("reciprocity:  {:.3}", gstats::reciprocity(&g));
    println!(
        "clustering:   {:.3} (sampled)",
        gstats::sampled_clustering_coefficient(&g, 500, 7)
    );
    println!(
        "wedge closure: {:.3} ({} closed / {} wedges, sampled)",
        closed as f64 / wedges.max(1) as f64,
        closed,
        wedges
    );
    Ok(())
}

fn cmd_schedule(flags: &HashMap<String, String>) -> Result<(), String> {
    let g = load_edge_list(required(flags, "graph")?).map_err(|e| e.to_string())?;
    let ratio: f64 = parsed(flags, "rw-ratio", 5.0)?;
    let rates = Rates::log_degree(&g, ratio);
    let algorithm = required(flags, "algorithm")?;
    let out = required(flags, "out")?;
    let schedule = match algorithm {
        "ff" | "hybrid" => hybrid_schedule(&g, &rates),
        "parallelnosy" | "pn" => ParallelNosy::default().run(&g, &rates).schedule,
        "chitchat" | "cc" => ChitChat::default().run(&g, &rates).schedule,
        "sharded" => {
            let shards: usize = parsed(flags, "shards", 4)?;
            ShardedChitChat {
                shards,
                ..Default::default()
            }
            .run(&g, &rates)
            .schedule
        }
        other => return Err(format!("unknown algorithm {other:?}")),
    };
    validate_bounded_staleness(&g, &schedule)
        .map_err(|e| format!("internal error — infeasible schedule: {e}"))?;
    save_schedule(&schedule, out).map_err(|e| e.to_string())?;
    let ff = hybrid_schedule(&g, &rates);
    println!(
        "wrote schedule to {out}: cost {:.1}, improvement over hybrid {:.3}x",
        schedule_cost(&g, &rates, &schedule),
        predicted_improvement(&g, &rates, &schedule, &ff)
    );
    Ok(())
}

fn cmd_evaluate(flags: &HashMap<String, String>) -> Result<(), String> {
    let g = load_edge_list(required(flags, "graph")?).map_err(|e| e.to_string())?;
    let ratio: f64 = parsed(flags, "rw-ratio", 5.0)?;
    let rates = Rates::log_degree(&g, ratio);
    let schedule =
        load_schedule(required(flags, "schedule")?, g.edge_count()).map_err(|e| e.to_string())?;
    validate_bounded_staleness(&g, &schedule).map_err(|e| format!("infeasible schedule: {e}"))?;
    let ff = hybrid_schedule(&g, &rates);
    let report = coverage_report(&g, &schedule);
    println!("cost:        {:.1}", schedule_cost(&g, &rates, &schedule));
    println!(
        "improvement: {:.3}x over hybrid",
        predicted_improvement(&g, &rates, &schedule, &ff)
    );
    println!(
        "serving:     {} push, {} pull, {} both, {} piggybacked, {} unserved",
        report.push, report.pull, report.both, report.covered, report.unserved
    );
    if let Some(servers) = flags.get("servers") {
        let servers: usize = servers
            .parse()
            .map_err(|_| "invalid value for --servers".to_string())?;
        let placement = RandomPlacement::new(servers, 1);
        let pc = Pc::new(&g, &rates, &schedule);
        let pc_ff = Pc::new(&g, &rates, &ff);
        println!(
            "@{servers} servers: normalized throughput {:.4} (hybrid {:.4}), load balance σ {:.2e}",
            pc.normalized_throughput(&placement),
            pc_ff.normalized_throughput(&placement),
            pc.load_balance(&placement).1.sqrt()
        );
    }
    Ok(())
}

fn cmd_analyze(flags: &HashMap<String, String>) -> Result<(), String> {
    use social_piggybacking::core::analysis::{amplification, cost_breakdown, hub_report};
    let g = load_edge_list(required(flags, "graph")?).map_err(|e| e.to_string())?;
    let ratio: f64 = parsed(flags, "rw-ratio", 5.0)?;
    let top: usize = parsed(flags, "top", 10)?;
    let rates = Rates::log_degree(&g, ratio);
    let schedule =
        load_schedule(required(flags, "schedule")?, g.edge_count()).map_err(|e| e.to_string())?;
    let b = cost_breakdown(&g, &rates, &schedule);
    println!(
        "cost breakdown: push {:.1} + pull {:.1} = {:.1}; piggybacking saves {:.1}",
        b.push_cost,
        b.pull_cost,
        b.total(),
        b.covered_hybrid_cost
    );
    let a = amplification(&g, &rates, &schedule);
    println!(
        "amplification:  {:.2} views/share, {:.2} views/query (rate-weighted)",
        a.views_per_share, a.views_per_query
    );
    let hubs = hub_report(&g, &schedule);
    println!("hubs:           {} total; top {top}:", hubs.len());
    for h in hubs.iter().take(top) {
        println!(
            "  user {:>8}: covers {:>5} edges ({} pushes in, {} pulls out)",
            h.hub, h.edges_covered, h.pushes_in, h.pulls_out
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let flags = parse_flags(&s(&["--model", "flickr", "--nodes", "100"])).unwrap();
        assert_eq!(flags["model"], "flickr");
        assert_eq!(flags["nodes"], "100");
    }

    #[test]
    fn missing_value_rejected() {
        assert!(parse_flags(&s(&["--model"])).is_err());
        assert!(parse_flags(&s(&["model", "x"])).is_err());
    }

    #[test]
    fn unknown_subcommand_rejected() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn end_to_end_via_tempdir() {
        let dir = std::env::temp_dir().join("piggyback-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let graph = dir.join("g.edges").to_string_lossy().into_owned();
        let sched = dir.join("s.sched").to_string_lossy().into_owned();
        run(&s(&[
            "generate", "--model", "flickr", "--nodes", "300", "--seed", "7", "--out", &graph,
        ]))
        .unwrap();
        run(&s(&["stats", "--graph", &graph])).unwrap();
        run(&s(&[
            "schedule",
            "--graph",
            &graph,
            "--algorithm",
            "parallelnosy",
            "--out",
            &sched,
        ]))
        .unwrap();
        run(&s(&[
            "evaluate",
            "--graph",
            &graph,
            "--schedule",
            &sched,
            "--servers",
            "100",
        ]))
        .unwrap();
        run(&s(&[
            "analyze",
            "--graph",
            &graph,
            "--schedule",
            &sched,
            "--top",
            "5",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schedule_rejects_unknown_algorithm() {
        let dir = std::env::temp_dir().join("piggyback-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let graph = dir.join("g.edges").to_string_lossy().into_owned();
        run(&s(&[
            "generate",
            "--model",
            "erdos-renyi",
            "--nodes",
            "50",
            "--edges",
            "200",
            "--out",
            &graph,
        ]))
        .unwrap();
        let err = run(&s(&[
            "schedule",
            "--graph",
            &graph,
            "--algorithm",
            "magic",
            "--out",
            "/dev/null",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown algorithm"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
